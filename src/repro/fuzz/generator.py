"""Seed-deterministic case generation.

``CampaignGenerator(campaign_seed).case(i)`` is a pure function of
``(campaign_seed, i)``: each call derives a fresh
:class:`~repro.sim.rng.RandomStreams` stream named ``case-<i>``, so the
i-th case is identical no matter how many cases were drawn before it,
in what order, or in which process.  That is the property the engine's
parallel executor and the shrinker lean on.

Cases are *legal but hostile*: every sampled value stays inside the
paper's stated bounds (GPS population <= 8, loss probabilities in
[0, 1], warmup < cycles, ...), while schedules are composed to stress
the recovery machinery -- crash/restart churn, deep fades long enough
to outlive a liveness lease (the eviction-under-fade scenario), and
control-field storms.  Fault schedules are rendered through
:func:`repro.faults.schedule.format_faults` and re-parsed at run time,
so the fuzzer also exercises the user-facing grammar.

``overrides`` force chosen config fields on every case (the known-bug
demo passes ``{"uid_allocation": "lowest_free"}``); sizing decisions
(run length, fault windows) are made *after* overrides apply, so a
forced lease still gets a correctly sized settle tail.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Tuple

from repro.faults.schedule import (
    FaultSpec,
    cf_storm,
    crash,
    fade,
    format_faults,
    restart,
)
from repro.fuzz.case import MODE_CELL, MODE_SERVE, FuzzCase
from repro.sim.rng import RandomStreams

#: Cycles a cell needs after its last disturbance before the
#: stabilization oracle may judge it (see ``oracles.settle_cycles``).
_TAIL_SLACK = (6, 12)


def settle_cycles(config: Dict[str, Any]) -> int:
    """Worst-case cycles from 'disturbance over' to 'fully recovered'.

    Eviction (lease), detection (cycles or attempts, whichever is
    slower), the randomized re-registration backoff, and a margin for
    contention rounds and the 4-second GPS deadline itself.
    """
    lease = int(config.get("liveness_lease_cycles", 0))
    detect = max(int(config.get("eviction_detect_cycles", 2)),
                 int(config.get("eviction_detect_attempts", 6)))
    jitter = int(config.get("eviction_backoff_jitter_cycles", 0))
    return lease + detect + jitter + 8


class CampaignGenerator:
    """Draws :class:`FuzzCase` values from one campaign seed."""

    def __init__(self, campaign_seed: int,
                 overrides: Optional[Dict[str, Any]] = None,
                 serve_fraction: float = 0.2,
                 differential_every: int = 8):
        self.campaign_seed = int(campaign_seed)
        self.overrides = dict(overrides or {})
        self.serve_fraction = float(serve_fraction)
        self.differential_every = max(1, int(differential_every))

    def cases(self, budget: int) -> List[FuzzCase]:
        return [self.case(index) for index in range(budget)]

    def case(self, index: int) -> FuzzCase:
        # A fresh factory per call: RandomStreams caches live Random
        # objects, so reusing one across calls would make case(i)
        # depend on what was drawn before it.
        rng = RandomStreams(self.campaign_seed).stream(f"case-{index}")
        mode = (MODE_SERVE if rng.random() < self.serve_fraction
                else MODE_CELL)
        config = self._sample_config(rng, mode)
        config.update(self.overrides)
        settle = settle_cycles(config)

        ops: Tuple[Tuple[int, str, str], ...] = ()
        if mode == MODE_SERVE:
            specs: List[FaultSpec] = []
            ops, last_end = self._sample_ops(rng, config)
        else:
            specs, last_end = self._sample_faults(rng, config)
        tail = rng.randint(*_TAIL_SLACK)
        config["cycles"] = max(config["warmup_cycles"] + 30,
                               last_end + settle + tail)

        differential = (mode == MODE_CELL
                        and index % self.differential_every == 0)
        return FuzzCase(
            campaign_seed=self.campaign_seed,
            index=index,
            mode=mode,
            config_items=tuple(sorted(config.items())),
            faults_text=format_faults(specs),
            ops=ops,
            differential=differential)

    # -- configuration ----------------------------------------------------

    def _sample_config(self, rng: random.Random,
                       mode: str) -> Dict[str, Any]:
        config: Dict[str, Any] = {
            "num_data_users": rng.randint(2, 10),
            "num_gps_users": rng.randint(0, 6),
            "load_index": round(rng.uniform(0.2, 1.1), 3),
            "message_size": rng.choice(
                ["uniform", "uniform", "fixed"]),
            "seed": rng.randrange(1, 1_000_000),
            "warmup_cycles": rng.randint(8, 14),
        }
        if rng.random() < 0.2:
            config["forward_load_index"] = round(
                rng.uniform(0.1, 0.5), 3)
        model = rng.choice(["perfect", "perfect", "perfect", "perfect",
                            "ge", "ge", "iid", "outage"])
        config["error_model"] = model
        if model == "outage":
            config["outage_loss"] = round(rng.uniform(0.005, 0.05), 4)
        elif model == "iid":
            config["symbol_error_rate"] = round(
                rng.uniform(0.001, 0.01), 4)
        if mode == MODE_CELL and rng.random() < 0.2:
            config["registration_mode"] = "poisson"
        if rng.random() < 0.15:
            config["use_second_cf"] = False
        if rng.random() < 0.15:
            config["dynamic_slot_adjustment"] = False
        if rng.random() < 0.15:
            config["data_in_contention"] = False
        if mode == MODE_SERVE:
            # The service refuses to run leaseless (leaves would never
            # be cleaned up); sample inside its legal band.
            lease = rng.choice([8, 8, 10, 12])
        else:
            lease = rng.choice([0, 6, 8, 8, 10, 12])
        config["liveness_lease_cycles"] = lease
        if lease and rng.random() < 0.25:
            config["eviction_backoff_jitter_cycles"] = rng.choice([2, 4])
        return config

    # -- scheduled faults (cell mode) -------------------------------------

    def _sample_faults(self, rng: random.Random,
                       config: Dict[str, Any],
                       ) -> Tuple[List[FaultSpec], int]:
        """A schedule plus the cycle its last disturbance is over."""
        start = config["warmup_cycles"] + 4
        lease = config["liveness_lease_cycles"]
        specs: List[FaultSpec] = []
        last_end = start

        def window_cycle() -> int:
            return rng.randint(start, start + 24)

        for _ in range(rng.choice([0, 1, 1, 2])):
            target = self._specific_target(rng, config)
            if target is None:
                continue
            at = window_cycle()
            if rng.random() < 0.85:
                back = at + rng.randint(2, 6)
                specs += [crash(target, at), restart(target, back)]
                last_end = max(last_end, back)
            else:
                specs.append(crash(target, at))
                # Never restarted: the lease (if any) must reap it.
                last_end = max(last_end, at + lease + 2)

        for _ in range(rng.choice([0, 1, 1, 2])):
            target = self._fade_target(rng, config)
            at = window_cycle()
            if lease and rng.random() < 0.35:
                # Outlive the lease: the base station evicts a
                # subscriber that is alive but unheard -- the scenario
                # UID-recycling bugs live in.
                duration = rng.randint(lease + 1, lease + 4)
            else:
                duration = rng.randint(1, 4)
            loss = 1.0 if rng.random() < 0.5 \
                else round(rng.uniform(0.6, 0.99), 2)
            channel = rng.choice(["both", "both", "forward", "reverse"])
            specs.append(fade(target, at, duration_cycles=duration,
                              loss=loss, channel=channel))
            last_end = max(last_end, at + duration)

        if rng.random() < 0.3:
            at = window_cycle()
            duration = rng.randint(1, 2)
            specs.append(cf_storm(at, duration_cycles=duration,
                                  target=rng.choice(["*", "data-*"])))
            last_end = max(last_end, at + duration)

        specs.sort(key=lambda spec: (spec.at_cycle, spec.kind,
                                     spec.target))
        return specs, last_end

    def _specific_target(self, rng: random.Random,
                         config: Dict[str, Any]) -> Optional[str]:
        """One concrete subscriber name, or None if the cell is empty."""
        pools = []
        if config["num_data_users"]:
            pools.append(("data", config["num_data_users"]))
        if config["num_gps_users"]:
            pools.append(("gps", config["num_gps_users"]))
        if not pools:
            return None
        service, population = rng.choice(pools)
        return f"{service}-{rng.randrange(population)}"

    def _fade_target(self, rng: random.Random,
                     config: Dict[str, Any]) -> str:
        choices = ["data-*", "*"]
        if config["num_gps_users"]:
            choices.append("gps-*")
        specific = self._specific_target(rng, config)
        if specific is not None:
            choices += [specific, specific]
        return rng.choice(choices)

    # -- runtime control ops (serve mode) ---------------------------------

    def _sample_ops(self, rng: random.Random, config: Dict[str, Any],
                    ) -> Tuple[Tuple[Tuple[int, str, str], ...], int]:
        lease = config["liveness_lease_cycles"]
        count = rng.randint(1, 4)
        cycles = sorted(rng.randint(4, 40) for _ in range(count))
        ops: List[Tuple[int, str, str]] = []
        last_end = cycles[-1]
        for cycle in cycles:
            kind = rng.choice(["load", "load", "join", "join",
                               "leave", "faults", "faults"])
            if kind == "load":
                argument = str(rng.choice([0.5, 1.5, 2.0, 3.0]))
            elif kind == "join":
                argument = rng.choice(["data", "gps"])
            elif kind == "leave":
                target = self._specific_target(rng, config)
                if target is None:
                    continue
                argument = target
                last_end = max(last_end, cycle + lease + 2)
            else:
                specs, rel_end = self._relative_burst(rng, config)
                argument = format_faults(specs)
                last_end = max(last_end, cycle + rel_end)
            ops.append((cycle, kind, argument))
        return tuple(ops), last_end

    def _relative_burst(self, rng: random.Random,
                        config: Dict[str, Any],
                        ) -> Tuple[List[FaultSpec], int]:
        """A small fault fragment with cycles relative to 'now'."""
        lease = config["liveness_lease_cycles"]
        roll = rng.random()
        target = self._specific_target(rng, config) or "data-*"
        if roll < 0.4:
            at = rng.randint(1, 2)
            back = at + rng.randint(2, 5)
            return [crash(target, at), restart(target, back)], back
        if roll < 0.8:
            at = rng.randint(0, 2)
            duration = (rng.randint(lease + 1, lease + 3)
                        if rng.random() < 0.4
                        else rng.randint(1, 4))
            loss = 1.0 if rng.random() < 0.5 \
                else round(rng.uniform(0.6, 0.99), 2)
            spec = fade(rng.choice([target, "data-*", "*"]), at,
                        duration_cycles=duration, loss=loss,
                        channel=rng.choice(["both", "reverse"]))
            return [spec], at + duration
        at = rng.randint(0, 2)
        duration = rng.randint(1, 2)
        return [cf_storm(at, duration_cycles=duration)], at + duration
