"""Executing one fuzz case and producing its verdict.

:func:`run_fuzz_case` is a module-level task function -- picklable by
reference -- so a campaign hands it straight to the run engine as a
``Point`` and inherits the engine's process pool, per-point timeouts,
retries, and crash salvage.  A hang or crash inside a hostile case is
therefore a *finding* (a ``harness:*`` bucket, via the engine's
``PointFailure`` records), never a campaign abort.

Cell-mode cases run like any experiment point: build, run, finalize,
judge.  Serve-mode cases drive a real :class:`~repro.serve.service.
CellService` -- journal, cycle stepping, control-op validation and all
-- against a throwaway journal directory, exercising the exact code
path operators use, then judge the underlying run the same way.
"""

from __future__ import annotations

import tempfile
from collections import defaultdict
from typing import Any, Dict, List, Optional, Tuple

from repro.core.cell import build_cell, finalize_run
from repro.faults.schedule import parse_faults
from repro.fuzz.case import MODE_SERVE, FuzzCase
from repro.fuzz.oracles import Observation, bucket_of, evaluate
from repro.obs.registry import MetricsRegistry
from repro.obs.timeline import TimelineRecorder

VERDICT_SCHEMA = "repro/fuzz-verdict@1"

#: Summary keys carried into the verdict (triage context, not oracle
#: input -- the oracles see the live objects).
_SUMMARY_KEYS = ("utilization", "message_loss_rate",
                 "gps_deadline_misses", "lease_evictions",
                 "evictions_detected", "recoveries",
                 "invariant_violations", "faults_injected")


def run_fuzz_case(case: FuzzCase) -> Dict[str, Any]:
    """Run one case under the full oracle stack; returns the verdict.

    The verdict is plain JSON (the engine may journal it, the corpus
    stores it).  Exceptions propagate -- the engine's salvage turns
    them into structured failures; direct callers (the shrinker)
    catch them.
    """
    if case.mode == MODE_SERVE:
        obs = _observe_serve(case)
    else:
        obs = _observe_cell(case)
    violations = evaluate(obs)
    bucket = bucket_of(violations)
    summary = obs.run.stats.summary()
    return {
        "schema": VERDICT_SCHEMA,
        "case": case.to_json(),
        "ok": bucket is None,
        "bucket": bucket,
        "violations": [violation.to_json()
                       for violation in violations],
        "summary": {key: summary[key] for key in _SUMMARY_KEYS
                    if key in summary},
    }


def _observe_cell(case: FuzzCase) -> Observation:
    config = case.cell_config()
    run = build_cell(config)
    recorder = TimelineRecorder(run,
                                registry=MetricsRegistry(enabled=False))
    run.sim.run(until=config.duration)
    finalize_run(run)

    legacy_summary: Optional[Dict[str, float]] = None
    if case.differential:
        from repro.sim.legacy import LegacySimulator

        legacy_run = build_cell(config, sim=LegacySimulator())
        legacy_run.sim.run(until=config.duration)
        finalize_run(legacy_run)
        legacy_summary = legacy_run.stats.summary()

    return Observation(case=case, run=run, recorder=recorder,
                       cycles=config.cycles,
                       scheduled=config.faults,
                       legacy_summary=legacy_summary)


def _observe_serve(case: FuzzCase) -> Observation:
    from repro.serve.config import ServeConfig
    from repro.serve.service import CellService, ServiceError

    config = case.cell_config()
    lease = config.liveness_lease_cycles or 8
    ops_by_cycle: Dict[int, List[Tuple[str, str]]] = defaultdict(list)
    for cycle, kind, argument in case.ops:
        ops_by_cycle[cycle].append((kind, argument))

    disturbances: List[Tuple[int, int]] = []
    with tempfile.TemporaryDirectory(prefix="repro-fuzz-") as tmp:
        serve_config = ServeConfig(
            name=f"fuzz-{case.case_id}", cells=1, cycle_period_s=0.0,
            checkpoint_every=1_000_000, journal_root=tmp)
        service = CellService("cell0", config, serve_config,
                              registry=MetricsRegistry(enabled=False))
        service.start(resume=False)
        try:
            for cycle in range(case.cycles):
                for kind, argument in ops_by_cycle.get(cycle, ()):
                    try:
                        _enqueue(service, kind, argument)
                    except ServiceError:
                        # A rejected op (GPS cap, unknown name) is a
                        # legal outcome of a generated sequence, not a
                        # harness failure.
                        continue
                    disturbances.append(
                        _disturbance(cycle, kind, argument, lease))
                service.step_cycle()
            run = service.run
            finalize_run(run)
        finally:
            service.shutdown(clean=True)

    return Observation(case=case, run=run, recorder=service.recorder,
                       cycles=case.cycles,
                       scheduled=(),
                       runtime_disturbances=tuple(disturbances))


def _enqueue(service: Any, kind: str, argument: str) -> None:
    if kind == "load":
        service.enqueue_load(float(argument))
    elif kind == "join":
        service.enqueue_join(argument)
    elif kind == "leave":
        service.enqueue_leave(argument)
    elif kind == "faults":
        service.enqueue_faults(argument)
    else:
        raise ValueError(f"unknown control op {kind!r}")


def _disturbance(cycle: int, kind: str, argument: str,
                 lease: int) -> Tuple[int, int]:
    """The absolute cycle window an op may legitimately perturb."""
    if kind == "faults":
        end = max(cycle + spec.at_cycle + spec.duration_cycles
                  for spec in parse_faults(argument))
        return (cycle, end + lease)
    if kind == "leave":
        return (cycle, cycle + lease + 2)
    # Joins perturb contention briefly; load dials change queueing but
    # are excused for one settle window anyway.
    return (cycle, cycle + 2)
