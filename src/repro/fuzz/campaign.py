"""Campaign orchestration: generate, execute, bucket, shrink, report.

A campaign is one :class:`~repro.engine.spec.RunSpec` whose points are
fuzz cases, executed through the ordinary run engine -- so ``--jobs``
fans cases across the process pool, the :class:`RunPolicy` timeout
turns a hung case into a structured failure, and a crashed worker is
salvaged, not fatal.  Engine-level failures become ``harness:*``
buckets alongside the oracle buckets: "the harness could not even run
this case" is itself a reportable finding.

The report's ``digest`` is a content hash over every case's bucket
assignment; two campaigns with the same seed and budget must produce
identical digests regardless of job count -- the bit-reproducibility
contract ``repro fuzz`` and the test suite assert.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.engine import Point, RunPolicy, RunSpec, execute
from repro.fuzz import corpus
from repro.fuzz.case import FuzzCase
from repro.fuzz.generator import CampaignGenerator
from repro.fuzz.runner import run_fuzz_case
from repro.fuzz.shrink import first_failure, shrink_case

REPORT_SCHEMA = "repro/fuzz-report@1"

#: Wall-clock ceiling per case under the parallel executor; generous
#: (a typical case runs well under a second) so only a genuine hang or
#: livelock in the simulator trips it.
DEFAULT_TIMEOUT_S = 120.0


@dataclass
class CampaignReport:
    """Everything one campaign produced."""

    campaign_seed: int
    budget: int
    jobs: int
    ok: int
    buckets: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    digest: str = ""
    shrink_evals: int = 0

    @property
    def failed(self) -> int:
        return sum(info["count"] for info in self.buckets.values())

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": REPORT_SCHEMA,
            "campaign_seed": self.campaign_seed,
            "budget": self.budget,
            "jobs": self.jobs,
            "ok": self.ok,
            "failed": self.failed,
            "digest": self.digest,
            "shrink_evals": self.shrink_evals,
            "buckets": {bucket: dict(info)
                        for bucket, info in sorted(self.buckets.items())},
        }

    def format(self) -> str:
        lines = [f"campaign seed {self.campaign_seed}: "
                 f"{self.ok}/{self.budget} clean, "
                 f"{len(self.buckets)} bucket(s), digest {self.digest}"]
        for bucket, info in sorted(self.buckets.items()):
            lines.append(
                f"  [{corpus.bucket_id(bucket)}] {bucket} -- "
                f"{info['count']} case(s), first at index "
                f"{info['first_index']}")
            reproducer = info.get("reproducer")
            if reproducer:
                lines.append(
                    f"    minimal: {json.dumps(reproducer['config'])} "
                    f"faults={reproducer['faults']!r} "
                    f"ops={reproducer['ops']!r}")
        return "\n".join(lines)


def run_campaign(campaign_seed: int, budget: int,
                 jobs: Optional[int] = None,
                 overrides: Optional[Dict[str, Any]] = None,
                 serve_fraction: float = 0.2,
                 shrink: bool = True,
                 shrink_evals: int = 80,
                 timeout_s: float = DEFAULT_TIMEOUT_S,
                 out_dir: Optional[str] = None) -> CampaignReport:
    """Run one full campaign; optionally write report + reproducers."""
    generator = CampaignGenerator(campaign_seed, overrides=overrides,
                                  serve_fraction=serve_fraction)
    cases = generator.cases(budget)
    spec = RunSpec(
        name=f"fuzz-{campaign_seed}",
        points=tuple(Point(fn=run_fuzz_case, config=case,
                           label={"index": case.index,
                                  "mode": case.mode})
                     for case in cases))
    # Cache off: a fuzz verdict must come from a fresh execution (the
    # differential and timing oracles are the point), and stale cached
    # verdicts would mask regressions.
    result = execute(spec, jobs=jobs, cache=False,
                     policy=RunPolicy(timeout_s=timeout_s, retries=0))

    verdicts: List[Optional[Dict[str, Any]]] = list(result.values)
    report = CampaignReport(campaign_seed=int(campaign_seed),
                            budget=budget, jobs=result.stats.jobs,
                            ok=0)

    # Engine salvage -> harness buckets (hang, crash, exception).
    for failure in result.failures:
        bucket = f"harness:{failure.kind}"
        info = report.buckets.setdefault(bucket, {
            "count": 0, "first_index": failure.index,
            "example": {"error": failure.error,
                        "message": failure.message},
        })
        info["count"] += 1
        info["first_index"] = min(info["first_index"], failure.index)
        info.setdefault(
            "first_case", cases[failure.index].to_json())

    assignments: List[Any] = []
    for index, verdict in enumerate(verdicts):
        if verdict is None:
            assignments.append("harness")
            continue
        if verdict["ok"]:
            report.ok += 1
            assignments.append("ok")
            continue
        bucket = verdict["bucket"]
        assignments.append(bucket)
        info = report.buckets.setdefault(bucket, {
            "count": 0, "first_index": index,
            "example": verdict["violations"][0],
        })
        info["count"] += 1
        if index < info["first_index"]:
            info["first_index"] = index
            info["example"] = verdict["violations"][0]

    if shrink:
        for bucket, verdict in sorted(
                first_failure(verdicts).items()):
            failing = FuzzCase.from_json(verdict["case"])
            shrunk = shrink_case(failing, bucket,
                                 max_evals=shrink_evals)
            report.shrink_evals += shrunk.evals
            report.buckets[bucket]["reproducer"] = \
                shrunk.case.to_json()
            report.buckets[bucket]["shrink"] = {
                "evals": shrunk.evals, "accepted": shrunk.accepted}

    report.digest = _digest(campaign_seed, assignments)
    if out_dir:
        _write_artifacts(out_dir, report)
    return report


def _digest(campaign_seed: int, assignments: List[Any]) -> str:
    blob = json.dumps([campaign_seed, assignments], sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def _write_artifacts(out_dir: str, report: CampaignReport) -> None:
    os.makedirs(out_dir, exist_ok=True)
    with open(os.path.join(out_dir, "report.json"), "w",
              encoding="utf-8") as handle:
        json.dump(report.to_json(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    for bucket, info in sorted(report.buckets.items()):
        reproducer = info.get("reproducer")
        if not reproducer:
            continue
        entry = corpus.make_entry(
            FuzzCase.from_json(reproducer), corpus.EXPECT_FAIL,
            bucket=bucket,
            notes=f"auto-shrunk by campaign seed "
                  f"{report.campaign_seed}")
        corpus.write_entry(out_dir, entry)
