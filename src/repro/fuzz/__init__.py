"""macfuzz: deterministic adversarial campaigns against OSU-MAC.

A campaign draws a budget of :class:`FuzzCase` values -- legal-but-hostile
cell configurations, fault schedules in the ``repro.faults`` grammar,
and (for service-mode cases) runtime control ops -- from a single
campaign seed, runs each case through the run engine, and judges every
run with a stack of oracles:

* the existing :class:`repro.faults.InvariantMonitor` (protocol safety),
* the observability layer's independent GPS 4-second deadline check,
* a stabilization oracle (after the last disturbance settles, no zombie
  subscribers and no leaked registry records),
* conservation properties over the statistics and per-cycle timeline,
* a differential oracle (calendar kernel vs the legacy heap kernel).

Failing cases are shrunk (:mod:`repro.fuzz.shrink`) to minimal
reproducers, bucketed by oracle + first-violation fingerprint
(:mod:`repro.fuzz.oracles`), and written as corpus entries
(:mod:`repro.fuzz.corpus`) that CI replays forever after.

Everything is derived from the campaign seed through
:class:`repro.sim.rng.RandomStreams`: the same seed always yields the
same cases, verdicts, buckets, and shrunk reproducers, regardless of
``--jobs``.
"""

from repro.fuzz.campaign import CampaignReport, run_campaign
from repro.fuzz.case import CASE_SCHEMA, FuzzCase
from repro.fuzz.corpus import (
    CORPUS_SCHEMA,
    bucket_id,
    iter_entries,
    make_entry,
    replay_entry,
    write_entry,
)
from repro.fuzz.generator import CampaignGenerator
from repro.fuzz.oracles import Violation, bucket_of
from repro.fuzz.runner import run_fuzz_case
from repro.fuzz.shrink import shrink_case

__all__ = [
    "CASE_SCHEMA",
    "CORPUS_SCHEMA",
    "CampaignGenerator",
    "CampaignReport",
    "FuzzCase",
    "Violation",
    "bucket_id",
    "bucket_of",
    "iter_entries",
    "make_entry",
    "replay_entry",
    "run_campaign",
    "run_fuzz_case",
    "shrink_case",
    "write_entry",
]
