"""The unit of fuzzing: one reproducible adversarial scenario.

A :class:`FuzzCase` is a frozen dataclass of primitives and tuples, so
it is hashable, picklable by value, and canonicalizes cleanly through
:func:`repro.engine.hashing.canonical` -- a case can be an engine
``Point`` config unchanged.  The JSON round trip (:meth:`to_json` /
:meth:`from_json`) is what corpus entries and ``repro fuzz replay``
are built on.

Fault schedules are carried as *grammar text* (the
``repro.faults.schedule`` syntax), not spec tuples: the fuzzer
exercises the same parser users type schedules into, and a corpus entry
stays human-readable and hand-editable.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Tuple

CASE_SCHEMA = "repro/fuzz-case@1"

MODE_CELL = "cell"
MODE_SERVE = "serve"

MODES = (MODE_CELL, MODE_SERVE)

#: CellConfig fields a case may override.  A closed set: corpus entries
#: loaded from disk are validated against it, so a stale or hostile
#: entry cannot smuggle arbitrary constructor keywords.
CONFIG_FIELDS = frozenset({
    "num_data_users", "num_gps_users", "load_index", "message_size",
    "forward_load_index", "error_model", "outage_loss",
    "symbol_error_rate", "registration_mode", "registration_rate",
    "registration_persistence", "use_second_cf",
    "dynamic_slot_adjustment", "data_in_contention",
    "liveness_lease_cycles", "eviction_detect_cycles",
    "eviction_detect_attempts", "eviction_backoff_jitter_cycles",
    "uid_allocation", "cycles", "warmup_cycles", "seed",
})

#: Control ops a serve-mode case may enqueue (mirrors the validated
#: ``CellService.enqueue_*`` surface).
OP_KINDS = ("load", "join", "leave", "faults")


@dataclass(frozen=True)
class FuzzCase:
    """One seed-determined scenario, ready to run and to serialize."""

    campaign_seed: int
    index: int
    mode: str = MODE_CELL
    #: Sorted ``(field, value)`` CellConfig overrides.
    config_items: Tuple[Tuple[str, Any], ...] = ()
    #: Scheduled faults in the ``parse_faults`` grammar ('' = none).
    faults_text: str = ""
    #: Serve-mode control ops as ``(cycle, kind, argument)`` -- the
    #: argument is a string (load factor, service class, subscriber
    #: name, or a relative fault-schedule fragment).
    ops: Tuple[Tuple[int, str, str], ...] = ()
    #: Run the legacy-kernel differential oracle on this case.
    differential: bool = False
    #: Free-text provenance (generator notes, shrink history).
    note: str = ""

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"unknown fuzz mode {self.mode!r}")
        for name, _ in self.config_items:
            if name not in CONFIG_FIELDS:
                raise ValueError(
                    f"config override {name!r} is not fuzzable")
        for cycle, kind, _ in self.ops:
            if kind not in OP_KINDS:
                raise ValueError(f"unknown control op {kind!r}")
            if int(cycle) < 0:
                raise ValueError("op cycle must be non-negative")

    # -- accessors ---------------------------------------------------------

    @property
    def case_id(self) -> str:
        return f"{self.campaign_seed}-{self.index}"

    @property
    def config(self) -> Dict[str, Any]:
        return dict(self.config_items)

    @property
    def cycles(self) -> int:
        return int(self.config.get("cycles", 100))

    def cell_config(self):
        """The :class:`~repro.core.config.CellConfig` this case runs.

        The invariant monitor is always on -- it is the first oracle.
        """
        from repro.core.config import CellConfig
        from repro.faults.schedule import parse_faults

        return CellConfig(check_invariants=True,
                          faults=parse_faults(self.faults_text),
                          **self.config)

    def with_config(self, **overrides: Any) -> "FuzzCase":
        """A copy with config fields replaced (shrinker building block)."""
        merged = self.config
        merged.update(overrides)
        return replace(self, config_items=tuple(sorted(merged.items())))

    # -- JSON round trip ---------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": CASE_SCHEMA,
            "campaign_seed": self.campaign_seed,
            "index": self.index,
            "mode": self.mode,
            "config": self.config,
            "faults": self.faults_text,
            "ops": [[cycle, kind, argument]
                    for cycle, kind, argument in self.ops],
            "differential": self.differential,
            "note": self.note,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "FuzzCase":
        schema = data.get("schema")
        if schema != CASE_SCHEMA:
            raise ValueError(
                f"expected a {CASE_SCHEMA} document, got {schema!r}")
        return cls(
            campaign_seed=int(data["campaign_seed"]),
            index=int(data["index"]),
            mode=str(data["mode"]),
            config_items=tuple(sorted(
                (str(name), value)
                for name, value in dict(data["config"]).items())),
            faults_text=str(data.get("faults", "")),
            ops=tuple((int(cycle), str(kind), str(argument))
                      for cycle, kind, argument in data.get("ops", [])),
            differential=bool(data.get("differential", False)),
            note=str(data.get("note", "")))
