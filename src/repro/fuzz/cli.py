"""``repro fuzz``: campaigns, replays, and corpus maintenance.

Three forms::

    python -m repro fuzz --campaign-seed 7 --budget 50 --jobs 4
    python -m repro fuzz replay tests/fuzz_corpus/<entry>.json
    python -m repro fuzz corpus [DIR]

A campaign exits 1 when any bucket (oracle or harness) was found, so a
CI smoke job is simply a campaign with a pinned seed.  ``replay``
accepts both corpus entries and bare case files; ``corpus`` replays a
whole directory against its recorded expectations.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List

from repro.fuzz import corpus
from repro.fuzz.campaign import run_campaign
from repro.fuzz.case import CASE_SCHEMA, FuzzCase
from repro.fuzz.runner import run_fuzz_case


def configure_parser(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "action", nargs="*", metavar="ACTION",
        help="empty = run a campaign; 'replay PATH' = re-run one "
             "reproducer; 'corpus [DIR]' = replay the checked-in "
             "corpus")
    parser.add_argument("--campaign-seed", type=int, default=1,
                        metavar="S",
                        help="root seed every case derives from "
                             "(default 1)")
    parser.add_argument("--budget", type=int, default=50, metavar="N",
                        help="number of cases to generate (default 50)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="process-pool width (engine executor; "
                             "REPRO_JOBS)")
    parser.add_argument("--serve-fraction", type=float, default=0.2,
                        help="fraction of cases run through the "
                             "service mode (default 0.2)")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="S",
                        help="per-case wall-clock limit under --jobs "
                             "(default 120)")
    parser.add_argument("--no-shrink", action="store_true",
                        help="skip shrinking (report raw failures)")
    parser.add_argument("--shrink-evals", type=int, default=80,
                        help="evaluation budget per bucket while "
                             "shrinking (default 80)")
    parser.add_argument("--override", action="append", default=[],
                        metavar="FIELD=VALUE",
                        help="force a CellConfig field on every case "
                             "(repeatable), e.g. "
                             "--override uid_allocation=lowest_free")
    parser.add_argument("--out", metavar="DIR", default=None,
                        help="write report.json and shrunk "
                             "reproducers to DIR")
    parser.add_argument("--json", action="store_true",
                        help="print the report/verdict as JSON")


def _parse_overrides(items: List[str]) -> Dict[str, Any]:
    overrides: Dict[str, Any] = {}
    for item in items:
        key, sep, raw = item.partition("=")
        if not sep or not key:
            raise SystemExit(
                f"fuzz: --override expects FIELD=VALUE, got {item!r}")
        try:
            overrides[key] = json.loads(raw)
        except ValueError:
            overrides[key] = raw
    return overrides


def _command_campaign(args: argparse.Namespace) -> int:
    report = run_campaign(
        campaign_seed=args.campaign_seed,
        budget=args.budget,
        jobs=args.jobs,
        overrides=_parse_overrides(args.override),
        serve_fraction=args.serve_fraction,
        shrink=not args.no_shrink,
        shrink_evals=args.shrink_evals,
        timeout_s=args.timeout if args.timeout is not None else 120.0,
        out_dir=args.out)
    if args.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(report.format())
    return 1 if report.buckets else 0


def _command_replay(args: argparse.Namespace, path: str) -> int:
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    schema = data.get("schema")
    if schema == corpus.CORPUS_SCHEMA:
        report = corpus.replay_entry(corpus.load_entry(path))
        ok = report["ok"]
        payload: Dict[str, Any] = dict(report, path=path)
        detail = report["detail"]
    elif schema == CASE_SCHEMA:
        verdict = run_fuzz_case(FuzzCase.from_json(data))
        ok = bool(verdict["ok"])
        payload = verdict
        detail = ("clean" if ok else
                  f"failed into bucket {verdict['bucket']!r}")
    else:
        print(f"fuzz: {path} is neither a case nor a corpus entry "
              f"(schema {schema!r})", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"{path}: {detail}")
    return 0 if ok else 1


def _command_corpus(args: argparse.Namespace, directory: str) -> int:
    reports = corpus.replay_corpus(directory)
    if args.json:
        print(json.dumps(reports, indent=2, sort_keys=True))
    else:
        if not reports:
            print(f"fuzz: no corpus entries under {directory}")
        for report in reports:
            mark = "ok " if report["ok"] else "FAIL"
            print(f"  {mark} {report['path']}: {report['detail']}")
    return 0 if all(report["ok"] for report in reports) else 1


def run(args: argparse.Namespace) -> int:
    action = list(args.action)
    if not action:
        return _command_campaign(args)
    verb = action[0]
    if verb == "replay":
        if len(action) != 2:
            print("fuzz: replay expects exactly one PATH",
                  file=sys.stderr)
            return 2
        return _command_replay(args, action[1])
    if verb == "corpus":
        if len(action) > 2:
            print("fuzz: corpus expects at most one DIR",
                  file=sys.stderr)
            return 2
        directory = action[1] if len(action) == 2 \
            else corpus.DEFAULT_CORPUS_DIR
        return _command_corpus(args, directory)
    print(f"fuzz: unknown action {verb!r} (expected 'replay' or "
          f"'corpus')", file=sys.stderr)
    return 2
