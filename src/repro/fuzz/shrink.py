"""Automatic reduction of failing cases to minimal reproducers.

Greedy delta-debugging over the structured case, not its bytes: drop
fault entries one at a time, drop control ops, remove subscribers,
shorten the run, calm the load, simplify the channel.  A candidate is
accepted when it still fails into the *same bucket* (same oracle, same
normalized fingerprint) -- shrinking must preserve the failure mode,
not merely some failure.

Everything is deterministic: transformations are tried in a fixed
order, each acceptance restarts the pass list, and the evaluation
budget bounds total work.  Candidates that fail to build or crash the
runner are simply rejected (the bug might *be* load-bearing on the
dropped element).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterator, List, Optional

from repro.faults.schedule import format_faults, parse_faults
from repro.fuzz.case import FuzzCase
from repro.fuzz.runner import run_fuzz_case

Verdict = Dict[str, object]
Evaluator = Callable[[FuzzCase], Verdict]


@dataclass
class ShrinkResult:
    """The minimal case found, plus accounting for the report."""

    case: FuzzCase
    bucket: str
    evals: int
    accepted: int

    def to_json(self) -> Dict[str, object]:
        return {"case": self.case.to_json(), "bucket": self.bucket,
                "evals": self.evals, "accepted": self.accepted}


def shrink_case(case: FuzzCase, bucket: str,
                evaluate: Evaluator = run_fuzz_case,
                max_evals: int = 80) -> ShrinkResult:
    """Reduce ``case`` while it keeps failing into ``bucket``."""
    evals = 0
    accepted = 0

    def still_fails(candidate: FuzzCase) -> bool:
        nonlocal evals
        if evals >= max_evals:
            return False
        evals += 1
        try:
            verdict = evaluate(candidate)
        except Exception:
            return False  # invalid or crashing candidate: keep parent
        return verdict.get("bucket") == bucket

    current = case
    progress = True
    while progress and evals < max_evals:
        progress = False
        for candidate in _candidates(current):
            if evals >= max_evals:
                break
            if still_fails(candidate):
                current = candidate
                accepted += 1
                progress = True
                break  # restart the pass list from the smaller case
    final = replace(
        current,
        note=(f"shrunk from case {case.case_id} "
              f"({accepted} reductions, {evals} evals)"))
    return ShrinkResult(case=final, bucket=bucket, evals=evals,
                        accepted=accepted)


def _candidates(case: FuzzCase) -> Iterator[FuzzCase]:
    """Smaller cases, most aggressive first (fixed, deterministic)."""
    config = case.config

    # 1. Drop whole fault entries (later entries first: the triggering
    #    event is usually early, the noise late).
    faults = list(parse_faults(case.faults_text))
    for index in reversed(range(len(faults))):
        remaining = faults[:index] + faults[index + 1:]
        yield replace(case, faults_text=format_faults(remaining))

    # 2. Drop control ops.
    for index in reversed(range(len(case.ops))):
        remaining_ops = case.ops[:index] + case.ops[index + 1:]
        yield replace(case, ops=remaining_ops)

    # 3. Shed population (halve, then decrement).
    for field, floor in (("num_data_users", 1), ("num_gps_users", 0)):
        count = int(config.get(field, 0))
        for smaller in _shrink_int(count, floor):
            yield case.with_config(**{field: smaller})

    # 4. Shorten the run (halve toward a floor that keeps the config
    #    valid and leaves the oracles a little tail).
    cycles = case.cycles
    warmup = int(config.get("warmup_cycles", 30))
    floor = warmup + 20
    for smaller in _shrink_int(cycles, floor):
        yield case.with_config(cycles=smaller)
    for smaller in _shrink_int(warmup, 1):
        yield case.with_config(warmup_cycles=smaller)

    # 5. Calm the workload and the channel.
    load = float(config.get("load_index", 0.5))
    if load > 0.15:
        yield case.with_config(load_index=round(load / 2, 3))
    if float(config.get("forward_load_index", 0.0)) > 0:
        yield case.with_config(forward_load_index=0.0)
    if config.get("error_model", "perfect") != "perfect":
        yield case.with_config(error_model="perfect")
    if config.get("registration_mode", "simultaneous") != "simultaneous":
        yield case.with_config(registration_mode="simultaneous")

    # 6. Halve fade/storm windows (shorter disturbances).
    for index, spec in enumerate(faults):
        if spec.duration_cycles > 1:
            trimmed = list(faults)
            trimmed[index] = replace(
                spec, duration_cycles=max(1, spec.duration_cycles // 2))
            yield replace(case, faults_text=format_faults(trimmed))

    # 7. Drop the differential re-run if it is not the failing oracle
    #    (cheaper replays; rejected automatically when it is).
    if case.differential:
        yield replace(case, differential=False)


def _shrink_int(value: int, floor: int) -> List[int]:
    """Candidate reductions for an integer: halve, then step down."""
    out: List[int] = []
    half = (value + floor) // 2
    if floor <= half < value:
        out.append(half)
    if value - 1 >= floor and (value - 1) not in out:
        out.append(value - 1)
    return out


def first_failure(verdicts: List[Optional[Verdict]]
                  ) -> Dict[str, Verdict]:
    """Map each bucket to the first (lowest-index) failing verdict."""
    by_bucket: Dict[str, Verdict] = {}
    for verdict in verdicts:
        if not verdict or verdict.get("ok"):
            continue
        bucket = verdict.get("bucket")
        if isinstance(bucket, str) and bucket not in by_bucket:
            by_bucket[bucket] = verdict
    return by_bucket
