"""Tests for the observability subsystem (repro.obs)."""

import json

import pytest

from repro.core.cell import build_cell, finalize_run, run_cell
from repro.core.config import CellConfig
from repro.obs.export import (
    build_manifest,
    config_digest,
    read_jsonl,
    sidecar_paths,
    to_prometheus,
    write_csv,
    write_jsonl,
)
from repro.obs.observe import observe_cell
from repro.obs.profiler import Profiler, instrument_cell
from repro.obs.registry import (
    NULL_CHILD,
    MetricsRegistry,
    default_registry,
    set_default_registry,
)
from repro.obs.render import (
    filter_records,
    gps_verdict,
    render_timeline,
    timeline_digest,
)
from repro.obs.timeline import TimelineRecorder


def small_config(**overrides):
    defaults = dict(num_data_users=4, num_gps_users=2, load_index=0.6,
                    cycles=40, warmup_cycles=10, seed=13)
    defaults.update(overrides)
    return CellConfig(**defaults)


def recorded_run(registry=None, **overrides):
    config = small_config(**overrides)
    run = build_cell(config)
    recorder = TimelineRecorder(run, registry=registry)
    run.sim.run(until=config.duration)
    finalize_run(run)
    return run, recorder


# -- registry ---------------------------------------------------------------


class TestRegistry:
    def test_counter_inc(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total", "help text")
        counter.inc()
        counter.inc(2.5)
        assert counter.labels().value == 3.5

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c_total").inc(-1)

    def test_labelled_children_are_distinct(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", "", ("kind",))
        counter.labels(kind="a").inc()
        counter.labels(kind="a").inc()
        counter.labels("b").inc(5)
        assert counter.labels(kind="a").value == 2
        assert counter.labels(kind="b").value == 5

    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "help")
        again = registry.counter("x_total")
        assert first is again
        assert registry.get("x_total") is first

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("dual", "")
        with pytest.raises(ValueError):
            registry.gauge("dual", "")

    def test_labelnames_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("lbl_total", "", ("a",))
        with pytest.raises(ValueError):
            registry.counter("lbl_total", "", ("b",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad name")
        with pytest.raises(ValueError):
            registry.counter("ok_total", "", ("bad-label",))

    def test_wrong_label_arity_raises(self):
        registry = MetricsRegistry()
        counter = registry.counter("arity_total", "", ("a", "b"))
        with pytest.raises(ValueError):
            counter.labels("only-one")
        with pytest.raises(ValueError):
            counter.labels(a="x", wrong="y")

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.labels().value == 7

    def test_histogram_buckets_sum_count(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "lat_seconds", "", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 100.0):
            histogram.observe(value)
        child = histogram.labels()
        assert child.count == 4
        assert child.sum == pytest.approx(105.0)
        assert child.cumulative() == [1, 2, 3, 4]

    def test_disabled_registry_hands_out_null_child(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("off_total", "", ("k",))
        child = counter.labels(k="x")
        assert child is NULL_CHILD
        child.inc()
        child.set(3)
        child.observe(1.0)
        registry.enable()
        assert counter.labels(k="x").value == 0

    def test_rows_flat_samples(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "", ("k",)).labels(k="x").inc(2)
        registry.histogram("h_s", "", buckets=(1.0,)).observe(0.5)
        rows = {row["name"]: row for row in registry.rows()}
        assert rows["a_total"]["value"] == 2
        assert rows["a_total"]["labels"] == {"k": "x"}
        assert rows["h_s"]["count"] == 1
        assert rows["h_s"]["buckets"] == {"1.0": 1, "inf": 1}
        json.dumps(registry.rows())  # must be JSON-serializable

    def test_reset_drops_families(self):
        registry = MetricsRegistry()
        registry.counter("gone_total").inc()
        registry.reset()
        assert registry.get("gone_total") is None

    def test_default_registry_starts_disabled_and_swaps(self):
        assert default_registry().enabled is False
        replacement = MetricsRegistry()
        previous = set_default_registry(replacement)
        try:
            assert default_registry() is replacement
        finally:
            set_default_registry(previous)

    def test_prometheus_exposition(self):
        registry = MetricsRegistry()
        registry.counter("req_total", "requests", ("code",)) \
            .labels(code="200").inc(3)
        registry.gauge("temp").set(1.5)
        registry.histogram("dur_seconds", "",
                           buckets=(0.1, 1.0)).observe(0.5)
        text = to_prometheus(registry)
        assert "# TYPE req_total counter" in text
        assert 'req_total{code="200"} 3' in text
        assert "temp 1.5" in text
        assert 'dur_seconds_bucket{le="0.1"} 0' in text
        assert 'dur_seconds_bucket{le="1"} 1' in text
        assert 'dur_seconds_bucket{le="+Inf"} 1' in text
        assert "dur_seconds_sum 0.5" in text
        assert "dur_seconds_count 1" in text


# -- timeline ---------------------------------------------------------------


class TestTimelineRecorder:
    def test_one_point_per_cycle(self):
        run, recorder = recorded_run()
        assert len(recorder.points) == run.config.cycles
        cycles = [point.cycle for point in recorder.points]
        assert cycles == sorted(cycles)

    def test_does_not_perturb_results(self):
        config = small_config()
        plain = run_cell(config).summary()
        observed = observe_cell(config)["summary"]
        assert observed == plain

    def test_gps_deadline_margin_confirms_4s_guarantee(self):
        """The paper's R1-R3 claim, checked from on-air timing."""
        _run, recorder = recorded_run(cycles=60)
        summary = recorder.summary()
        assert summary["gps_deadline_held"] is True
        assert summary["gps_min_margin_s"] >= 0.0
        assert summary["gps_max_gap_s"] <= 4.0
        # every GPS unit actually closed gaps
        assert len(recorder.gps_max_gap_by_unit) == 2

    def test_samples_track_live_state(self):
        _run, recorder = recorded_run()
        assert any(point.uplink_queue_depth > 0
                   for point in recorder.points)
        assert any(point.slot_utilization > 0
                   for point in recorder.points)
        assert sum(point.registrations
                   for point in recorder.points) == 6
        final = recorder.points[-1]
        assert final.registered_data == 4
        assert final.registered_gps == 2

    def test_jsonl_round_trip(self, tmp_path):
        _run, recorder = recorded_run()
        path = tmp_path / "timeline.jsonl"
        count = recorder.write_jsonl(str(path), labels={"load": 0.6})
        records = read_jsonl(str(path))
        assert len(records) == count == len(recorder.points)
        assert all(record["load"] == 0.6 for record in records)
        assert records[0]["cycle"] == recorder.points[0].cycle

    def test_zero_duration_run(self, tmp_path):
        config = small_config()
        run = build_cell(config)
        recorder = TimelineRecorder(run)
        run.sim.run(until=0.0)
        assert recorder.points == []
        summary = recorder.summary()
        assert summary["cycles_sampled"] == 0
        assert summary["gps_deadline_held"] is None
        path = tmp_path / "empty.jsonl"
        assert recorder.write_jsonl(str(path)) == 0

    def test_point_cap_drops_instead_of_growing(self):
        config = small_config()
        run = build_cell(config)
        recorder = TimelineRecorder(run, max_points=5)
        run.sim.run(until=config.duration)
        assert len(recorder.points) == 5
        assert recorder.dropped == config.cycles - 5

    def test_publishes_into_registry(self):
        registry = MetricsRegistry()
        _run, recorder = recorded_run(registry=registry)
        assert registry.get("osu_cycle").labels().value \
            == recorder.points[-1].cycle
        collisions = registry.get("osu_uplink_collisions_total")
        assert collisions.labels().value \
            == sum(point.uplink_collisions
                   for point in recorder.points)
        margins = registry.get("osu_gps_deadline_margin_seconds")
        assert margins.labels().count \
            == sum(1 for point in recorder.points
                   if point.gps_min_margin_s is not None)

    def test_disabled_registry_stays_empty(self):
        registry = MetricsRegistry(enabled=False)
        _run, _recorder = recorded_run(registry=registry)
        registry.enable()
        assert registry.get("osu_cycle") is None


# -- profiler ---------------------------------------------------------------


class TestProfiler:
    def test_section_and_wrap(self):
        profiler = Profiler()
        with profiler.section("block"):
            pass
        wrapped = profiler.wrap(lambda x: x + 1, "fn")
        assert wrapped(1) == 2
        assert profiler.sections["block"].calls == 1
        assert profiler.sections["fn"].calls == 1
        assert profiler.sections["fn"].total_s >= 0

    def test_disabled_section_records_nothing(self):
        profiler = Profiler(enabled=False)
        with profiler.section("skipped"):
            pass
        assert profiler.sections == {}
        assert profiler.table() == "[profile: no sections recorded]"

    def test_instrument_shadows_one_instance_only(self):
        profiler = Profiler()

        class Thing:
            def work(self):
                return 42

        instrumented, untouched = Thing(), Thing()
        profiler.instrument(instrumented, "work")
        assert instrumented.work() == 42
        assert untouched.work() == 42
        assert "work" not in untouched.__dict__
        assert profiler.sections["Thing.work"].calls == 1

    def test_instrument_cell_sections(self):
        config = small_config()
        run = build_cell(config)
        profiler = Profiler()
        instrument_cell(run, profiler)
        run.sim.run(until=config.duration)
        for name in ("sim.event_loop", "scheduler.build_cycle",
                     "channel.reverse_delivery",
                     "channel.forward_delivery"):
            assert profiler.sections[name].calls > 0, name

    def test_instrumented_run_is_bit_identical(self):
        config = small_config()
        plain = run_cell(config).summary()
        run = build_cell(config)
        instrument_cell(run, Profiler())
        run.sim.run(until=config.duration)
        finalize_run(run)
        assert run.stats.summary() == plain

    def test_merge_aggregates_worker_profiles(self):
        profiler = Profiler()
        profiler.record("stage", 1.0)
        other = {"stage": {"calls": 2, "total_s": 3.0, "max_s": 2.5},
                 "new": {"calls": 1, "total_s": 0.5, "max_s": 0.5}}
        profiler.merge(other)
        stage = profiler.sections["stage"]
        assert stage.calls == 3
        assert stage.total_s == pytest.approx(4.0)
        assert stage.max_s == pytest.approx(2.5)
        assert profiler.sections["new"].calls == 1

    def test_table_orders_by_total(self):
        profiler = Profiler()
        profiler.record("small", 0.001)
        profiler.record("big", 1.0)
        lines = profiler.table().splitlines()
        assert lines[2].startswith("big")
        assert "100.0%" in lines[2]


# -- exporters and manifests ------------------------------------------------


class TestExport:
    def test_jsonl_round_trip_and_torn_tail(self, tmp_path):
        path = tmp_path / "data.jsonl"
        write_jsonl(str(path), [{"a": 1}, {"a": 2}])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"a": 3')  # torn: run killed mid-write
        assert read_jsonl(str(path)) == [{"a": 1}, {"a": 2}]

    def test_csv_union_of_fields(self, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(str(path), [{"a": 1}, {"a": 2, "b": "x"}])
        lines = path.read_text().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,"
        assert lines[2] == "2,x"

    def test_config_digest_stable_and_sensitive(self):
        first = config_digest(small_config())
        again = config_digest(small_config())
        changed = config_digest(small_config(seed=99))
        assert first == again
        assert first != changed

    def test_manifest_fields(self):
        from repro.engine.policy import RunPolicy

        config = small_config(seed=42)
        manifest = build_manifest(
            "run", config=config, policy=RunPolicy(retries=2),
            argv=["run", "--seed", "42"], extra={"note": "hi"})
        assert manifest["schema"] == "repro/manifest@1"
        assert manifest["kind"] == "run"
        assert manifest["seed"] == 42
        assert manifest["config_sha256"] == config_digest(config)
        assert manifest["argv"] == ["run", "--seed", "42"]
        # canonical() projects dataclasses to [type-name, {fields}]
        assert manifest["policy"][1]["retries"] == 2
        assert manifest["note"] == "hi"
        assert manifest["code_fingerprint"]
        json.dumps(manifest)  # must serialize

    def test_sidecar_paths(self):
        paths = sidecar_paths("out/metrics.jsonl")
        assert paths["timeline"] == "out/metrics.jsonl"
        assert paths["manifest"] == "out/metrics.manifest.json"
        assert paths["prometheus"] == "out/metrics.prom"
        assert paths["profile"] == "out/metrics.profile.json"
        odd = sidecar_paths("out/metrics.dat")
        assert odd["manifest"] == "out/metrics.dat.manifest.json"


# -- rendering --------------------------------------------------------------


class TestRender:
    def timeline_records(self):
        _run, recorder = recorded_run()
        return recorder.to_dicts()

    def test_render_timeline_charts_and_verdict(self):
        text = render_timeline(self.timeline_records())
        assert "cycles sampled" in text
        assert "uplink_queue_depth" in text
        assert "GPS deadline check: HELD" in text

    def test_filter_and_groups(self):
        records = [dict(record, load=load, seed=1)
                   for load in (0.5, 0.9)
                   for record in self.timeline_records()]
        kept = filter_records(records, {"load": "0.9"})
        assert kept
        assert all(record["load"] == 0.9 for record in kept)
        text = render_timeline(records)
        assert "merged sweep timeline with 2 groups" in text

    def test_digest(self):
        digest = timeline_digest(self.timeline_records())
        assert digest["records"] == 40
        assert digest["gps_deadline_held"] is True
        assert digest["max_uplink_queue_depth"] > 0
        json.dumps(digest)

    def test_gps_verdict_violated(self):
        records = [{"gps_min_margin_s": -0.5, "gps_max_gap_s": 4.5}]
        assert "VIOLATED" in gps_verdict(records)
        assert "no GPS inter-access gaps" in gps_verdict([{}])


# -- CLI end to end ---------------------------------------------------------


@pytest.fixture
def fresh_registry():
    """Swap in a throwaway default registry (the CLIs enable it)."""
    registry = MetricsRegistry(enabled=False)
    previous = set_default_registry(registry)
    yield registry
    set_default_registry(previous)


RUN_ARGS = ["run", "--cycles", "30", "--warmup", "6",
            "--data-users", "4", "--gps-users", "2"]


class TestObsCli:
    def test_run_with_trace_metrics_profile(self, tmp_path, capsys,
                                            fresh_registry):
        from repro.cli import main as cli_main

        metrics = tmp_path / "m.jsonl"
        trace = tmp_path / "t.jsonl"
        code = cli_main(RUN_ARGS + ["--metrics", str(metrics),
                                    "--profile",
                                    "--trace", str(trace)])
        assert code == 0
        captured = capsys.readouterr()
        assert "simulated 30 cycles" in captured.out
        assert "sim.event_loop" in captured.err

        timeline = read_jsonl(str(metrics))
        assert len(timeline) == 30
        events = read_jsonl(str(trace))
        assert events and "category" in events[0]

        paths = sidecar_paths(str(metrics))
        manifest = json.loads(
            open(paths["manifest"], encoding="utf-8").read())
        assert manifest["kind"] == "run"
        assert manifest["obs"]["gps_deadline_held"] is True
        prom = open(paths["prometheus"], encoding="utf-8").read()
        assert "# TYPE osu_cycle gauge" in prom
        profile = json.loads(
            open(paths["profile"], encoding="utf-8").read())
        assert "sim.event_loop" in profile

    def test_run_without_flags_stays_uninstrumented(
            self, capsys, fresh_registry):
        from repro.cli import main as cli_main

        assert cli_main(RUN_ARGS) == 0
        fresh_registry.enable()
        assert fresh_registry.get("osu_cycle") is None

    def test_sweep_metrics_and_obs_render(self, tmp_path, capsys,
                                          fresh_registry):
        from repro.cli import main as cli_main

        metrics = tmp_path / "sweep.jsonl"
        code = cli_main(["sweep", "--loads", "0.5,0.9",
                         "--seeds", "1", "--cycles", "30",
                         "--warmup", "6", "--no-cache",
                         "--metrics", str(metrics), "--profile"])
        assert code == 0
        capsys.readouterr()

        records = read_jsonl(str(metrics))
        assert len(records) == 60  # 2 loads x 1 seed x 30 cycles
        assert {record["load"] for record in records} == {0.5, 0.9}
        manifest = json.loads(open(
            sidecar_paths(str(metrics))["manifest"],
            encoding="utf-8").read())
        assert manifest["kind"] == "sweep"
        assert manifest["grid"]["loads"] == [0.5, 0.9]
        assert manifest["obs"]["gps_deadline_held"] is True

        code = cli_main(["obs", str(metrics),
                         "--where", "load=0.9"])
        assert code == 0
        rendered = capsys.readouterr().out
        assert "GPS deadline check: HELD" in rendered

        code = cli_main(["obs", str(metrics), "--json"])
        assert code == 0
        digest = json.loads(capsys.readouterr().out)
        assert digest["records"] == 60
        assert digest["gps_deadline_held"] is True

    def test_obs_bad_where_and_missing_match(self, tmp_path, capsys,
                                             fresh_registry):
        from repro.cli import main as cli_main

        path = tmp_path / "t.jsonl"
        write_jsonl(str(path), [{"cycle": 0, "load": 0.5}])
        assert cli_main(["obs", str(path), "--where", "junk"]) == 2
        assert cli_main(["obs", str(path),
                         "--where", "load=9.9"]) == 1
        capsys.readouterr()

    def test_experiments_metrics_and_profile(self, tmp_path, capsys,
                                             fresh_registry):
        from repro.experiments.__main__ import main as experiments_main

        metrics = tmp_path / "exp.jsonl"
        code = experiments_main(
            ["fig8a", "--quick", "--no-cache",
             "--metrics", str(metrics), "--profile"])
        assert code == 0
        captured = capsys.readouterr()
        assert "experiment.fig8a" in captured.err
        rows = read_jsonl(str(metrics))
        names = {row["name"] for row in rows}
        assert "engine_points_total" in names
        prom = open(sidecar_paths(str(metrics))["prometheus"],
                    encoding="utf-8").read()
        assert "engine_points_total" in prom


# -- integration: engine + faults publish into the registry -----------------


class TestIntegration:
    def test_engine_telemetry_publishes(self):
        from repro.engine.telemetry import EngineStats, telemetry

        registry = MetricsRegistry()
        previous = set_default_registry(registry)
        try:
            telemetry.record(EngineStats(
                spec="demo", points=3, executed=2, cache_hits=1,
                wall_s=0.5, retries=1, point_seconds=[0.1, 0.2]))
        finally:
            set_default_registry(previous)
        executed = registry.get("engine_points_total") \
            .labels(spec="demo", disposition="executed")
        assert executed.value == 2
        retries = registry.get("engine_recoveries_total") \
            .labels(spec="demo", kind="retries")
        assert retries.value == 1
        seconds = registry.get("engine_point_seconds") \
            .labels(spec="demo")
        assert seconds.count == 2

    def test_invariant_monitor_publishes(self):
        registry = MetricsRegistry()
        previous = set_default_registry(registry)
        try:
            run_cell(small_config(cycles=20, check_invariants=True))
        finally:
            set_default_registry(previous)
        checks = registry.get("osu_invariant_checks_total")
        # one check per cycle plus the final audit in finalize_run
        assert checks.labels().value == 21
        violations = registry.get("osu_invariant_violations_total")
        assert violations.labels().value == 0

    def test_observed_sweep_spec_values_serialize(self):
        from repro.engine import execute
        from repro.experiments.runner import observed_sweep_spec

        spec = observed_sweep_spec(
            loads=(0.5,), seeds=(1,), profile=True,
            cycles=20, warmup_cycles=5)
        result = execute(spec, cache=False)
        value = result.values[0]
        json.dumps(value)  # cache/parallel compatible
        assert len(value["timeline"]) == 20
        assert value["obs"]["cycles_sampled"] == 20
        assert "sim.event_loop" in value["profile"]
        assert result.reduced[0]["load"] == 0.5
