"""Unit and property tests for the Reed--Solomon codec.

The paper's error-control behaviour rests on RS(64,48): up to 8 symbol
errors per codeword are corrected; beyond that the decoder refuses to
output (rather than silently delivering a corrupted packet).
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.phy.rs import RS_64_48, ReedSolomon, RSDecodeFailure, codeword_bits

messages = st.lists(st.integers(0, 255), min_size=48, max_size=48)


def corrupt(codeword, positions, rng):
    out = bytearray(codeword)
    for position in positions:
        old = out[position]
        while out[position] == old:
            out[position] = rng.randrange(256)
    return bytes(out)


class TestParameters:
    def test_rs_64_48_parameters(self):
        assert RS_64_48.n == 64
        assert RS_64_48.k == 48
        assert RS_64_48.nsym == 16
        assert RS_64_48.t == 8

    def test_codeword_bits_matches_table1(self):
        info_bits, coded_bits = codeword_bits()
        assert info_bits == 384  # Table 1: information bits per codeword
        assert coded_bits == 512  # Table 1: bits per codeword

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ReedSolomon(64, 64)
        with pytest.raises(ValueError):
            ReedSolomon(300, 100)
        with pytest.raises(ValueError):
            ReedSolomon(10, 0)

    def test_generator_polynomial_degree(self):
        assert len(RS_64_48.generator_poly) == 17  # degree 16


class TestEncoding:
    def test_systematic(self):
        message = bytes(range(48))
        codeword = RS_64_48.encode(message)
        assert len(codeword) == 64
        assert codeword[:48] == message

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            RS_64_48.encode(bytes(47))
        with pytest.raises(ValueError):
            RS_64_48.encode(bytes(49))

    def test_symbol_range_checked(self):
        with pytest.raises(ValueError):
            RS_64_48.encode([300] + [0] * 47)

    @given(messages)
    def test_codeword_is_valid(self, message):
        assert RS_64_48.check(RS_64_48.encode(message))

    def test_all_zero_message(self):
        assert RS_64_48.encode(bytes(48)) == bytes(64)


class TestDecoding:
    @given(messages)
    def test_clean_roundtrip(self, message):
        codeword = RS_64_48.encode(message)
        assert RS_64_48.decode(codeword) == bytes(message)

    @given(messages, st.integers(1, 8), st.integers(0, 2**32 - 1))
    @settings(max_examples=60)
    def test_corrects_up_to_t_errors(self, message, nerrors, seed):
        rng = random.Random(seed)
        codeword = RS_64_48.encode(message)
        positions = rng.sample(range(64), nerrors)
        received = corrupt(codeword, positions, rng)
        assert RS_64_48.decode(received) == bytes(message)

    @given(messages, st.integers(1, 16), st.integers(0, 2**32 - 1))
    @settings(max_examples=60)
    def test_corrects_up_to_2t_erasures(self, message, nerasures, seed):
        rng = random.Random(seed)
        codeword = RS_64_48.encode(message)
        positions = rng.sample(range(64), nerasures)
        received = corrupt(codeword, positions, rng)
        assert RS_64_48.decode(received, erasures=positions) \
            == bytes(message)

    @given(messages, st.integers(0, 2**32 - 1))
    @settings(max_examples=40)
    def test_mixed_errors_and_erasures(self, message, seed):
        """2e + f <= 16 is always decodable."""
        rng = random.Random(seed)
        codeword = RS_64_48.encode(message)
        nerasures = rng.randrange(0, 17)
        nerrors = rng.randrange(0, (16 - nerasures) // 2 + 1)
        positions = rng.sample(range(64), nerasures + nerrors)
        erasure_positions = positions[:nerasures]
        received = corrupt(codeword, positions, rng)
        decoded = RS_64_48.decode(received, erasures=erasure_positions)
        assert decoded == bytes(message)

    def test_overload_never_silently_wrong(self):
        """>t errors: the decoder fails or (rarely) lands on another valid
        codeword -- it must never return the original message corrupted."""
        rng = random.Random(99)
        detected = 0
        for _ in range(50):
            message = bytes(rng.randrange(256) for _ in range(48))
            codeword = RS_64_48.encode(message)
            received = corrupt(codeword, rng.sample(range(64), 24), rng)
            try:
                decoded = RS_64_48.decode(received)
            except RSDecodeFailure:
                detected += 1
            else:
                # If it decoded, the output must be a valid codeword's
                # message (possibly a miscorrection, never garbage).
                assert RS_64_48.check(RS_64_48.encode(decoded))
        assert detected >= 45  # detection dominates overwhelmingly

    def test_erasure_beyond_capacity_fails(self):
        codeword = RS_64_48.encode(bytes(48))
        with pytest.raises(RSDecodeFailure):
            RS_64_48.decode(list(codeword), erasures=list(range(17)))

    def test_wrong_length_fails(self):
        with pytest.raises(RSDecodeFailure):
            RS_64_48.decode(bytes(63))

    def test_erasure_position_out_of_range(self):
        codeword = RS_64_48.encode(bytes(48))
        with pytest.raises(ValueError):
            RS_64_48.decode(codeword, erasures=[64])

    def test_check_detects_corruption(self):
        rng = random.Random(5)
        codeword = RS_64_48.encode(bytes(range(48)))
        assert RS_64_48.check(codeword)
        assert not RS_64_48.check(corrupt(codeword, [0], rng))
        assert not RS_64_48.check(bytes(10))


class TestOtherParameterizations:
    """The codec is generic; the MAC also relies on this for robustness."""

    @pytest.mark.parametrize("n,k", [(255, 223), (15, 11), (32, 16)])
    def test_roundtrip_with_errors(self, n, k):
        rng = random.Random(n * k)
        codec = ReedSolomon(n, k)
        for _ in range(10):
            message = bytes(rng.randrange(256) for _ in range(k))
            codeword = codec.encode(message)
            positions = rng.sample(range(n), codec.t)
            received = corrupt(codeword, positions, rng)
            assert codec.decode(received) == message

    def test_fcr_one_variant(self):
        rng = random.Random(17)
        codec = ReedSolomon(64, 48, fcr=1)
        message = bytes(rng.randrange(256) for _ in range(48))
        codeword = codec.encode(message)
        received = corrupt(codeword, rng.sample(range(64), 8), rng)
        assert codec.decode(received) == message
