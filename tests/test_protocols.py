"""Tests for the surveyed baseline MAC protocols (Section 4)."""

import random

import pytest

from repro.protocols import (
    DRMA,
    DynamicTDMA,
    PRMA,
    RAMA,
    SlottedAloha,
    VoiceModel,
)
from repro.protocols.base import (
    DataTerminal,
    ProtocolStats,
    VoiceTerminal,
    resolve_contention,
)
from repro.protocols.rama import run_auction


class TestBase:
    def test_resolve_contention_semantics(self):
        stats = ProtocolStats()
        assert resolve_contention([], 0, stats) is None
        assert stats.slots_idle == 1
        winner = resolve_contention(["a"], 1, stats)
        assert winner == "a"
        assert resolve_contention(["a", "b"], 2, stats) is None
        assert stats.slots_collided == 1
        assert stats.slots_total == 3

    def test_voice_model_activity_factor(self):
        model = VoiceModel(mean_spurt_frames=25, mean_silence_frames=35)
        rng = random.Random(1)
        talking = False
        active = 0
        trials = 40000
        for _ in range(trials):
            talking = model.advance(talking, rng)
            active += talking
        assert abs(active / trials - model.activity_factor) < 0.03
        # theoretical: 25 / (25 + 35)
        assert model.activity_factor == pytest.approx(25 / 60)

    def test_voice_terminal_drops_late_packets(self):
        stats = ProtocolStats()
        terminal = VoiceTerminal(0, VoiceModel(), max_delay_slots=10)
        terminal.pending.append(
            type("P", (), {"created_slot": 0})())
        terminal.drop_expired(current_slot=11, stats=stats)
        assert stats.voice_packets_dropped == 1
        assert not terminal.pending

    def test_data_terminal_queues(self):
        stats = ProtocolStats()
        terminal = DataTerminal(0, arrival_probability=1.0)
        rng = random.Random(2)
        terminal.maybe_arrive(5, rng, stats)
        assert len(terminal.pending) == 1
        assert terminal.transmit(8, stats)
        assert stats.data_delay_slots.samples == [3]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            VoiceModel(mean_spurt_frames=0)
        with pytest.raises(ValueError):
            DataTerminal(0, arrival_probability=2.0)


class TestSlottedAloha:
    def test_peak_throughput_near_1_over_e(self):
        """Saturated ALOHA with p ~ 1/N peaks near 1/e = 0.368."""
        num_terminals = 20
        protocol = SlottedAloha(num_terminals=num_terminals,
                                arrival_probability=1.0,  # saturated
                                transmit_probability=1.0 / num_terminals,
                                seed=3)
        stats = protocol.run(20000)
        assert 0.33 < stats.throughput() < 0.41

    def test_light_load_throughput_matches_offered(self):
        protocol = SlottedAloha(num_terminals=10,
                                arrival_probability=0.01,
                                transmit_probability=0.5, seed=4)
        stats = protocol.run(20000)
        assert stats.throughput() == pytest.approx(0.1, abs=0.03)

    def test_aggressive_transmit_probability_collapses(self):
        saturated = SlottedAloha(num_terminals=20,
                                 arrival_probability=1.0,
                                 transmit_probability=0.5, seed=5)
        stats = saturated.run(5000)
        assert stats.throughput() < 0.05  # collision collapse

    def test_validation(self):
        with pytest.raises(ValueError):
            SlottedAloha(0, 0.1)
        with pytest.raises(ValueError):
            SlottedAloha(5, 0.1, transmit_probability=0.0)


class TestRamaAuction:
    def test_auction_always_produces_single_winner(self):
        rng = random.Random(6)
        for population in (1, 2, 5, 17, 50):
            contenders = list(range(population))
            winner = run_auction(contenders, id_bits=8, rng=rng)
            assert winner in contenders

    def test_empty_auction(self):
        assert run_auction([], 8, random.Random(7)) is None

    def test_auction_winner_varies(self):
        rng = random.Random(8)
        contenders = list(range(10))
        winners = {run_auction(contenders, 8, rng) for _ in range(100)}
        assert len(winners) > 3  # randomized, not biased to one terminal


class TestProtocolBehaviour:
    def make(self, cls, **kwargs):
        defaults = dict(num_voice=10, num_data=10, seed=9)
        defaults.update(kwargs)
        return cls(**defaults)

    @pytest.mark.parametrize("cls", [PRMA, DynamicTDMA, RAMA, DRMA])
    def test_runs_and_carries_traffic(self, cls):
        protocol = self.make(cls, data_arrival_probability=0.02)
        stats = protocol.run(300)
        assert stats.slots_total > 0
        assert stats.slots_carrying_payload > 0
        assert stats.voice_packets_delivered > 0
        assert stats.data_packets_delivered > 0

    @pytest.mark.parametrize("cls", [PRMA, DynamicTDMA, RAMA, DRMA])
    def test_counters_consistent(self, cls):
        protocol = self.make(cls, data_arrival_probability=0.02)
        stats = protocol.run(200)
        assert (stats.slots_carrying_payload + stats.slots_idle
                + stats.slots_collided) <= stats.slots_total
        assert stats.data_packets_delivered \
            <= stats.data_packets_generated

    def test_prma_voice_reservation_holds(self):
        protocol = PRMA(num_voice=2, num_data=0, slots_per_frame=5,
                        p_voice=0.5,
                        voice_model=VoiceModel(mean_spurt_frames=1000,
                                               mean_silence_frames=1),
                        seed=10)
        stats = protocol.run(100)
        # Long spurts: after winning once, terminals keep their slots --
        # voice packets flow nearly every frame without repeated contention.
        assert stats.voice_packets_delivered > 150

    def test_prma_degrades_under_heavy_data_contention(self):
        """The survey's critique: PRMA utilization collapses under load."""
        light = PRMA(num_voice=0, num_data=5,
                     data_arrival_probability=0.005, p_data=0.2,
                     seed=11).run(500)
        heavy = PRMA(num_voice=0, num_data=50,
                     data_arrival_probability=0.2, p_data=0.2,
                     seed=11).run(500)
        assert heavy.collision_rate() > 5 * max(light.collision_rate(),
                                                0.01)

    def test_rama_reservations_beat_aloha_reservations(self):
        """Deterministic auctions waste no reservation slots: under a
        registration-heavy load RAMA grants strictly more reservations
        than D-TDMA's colliding ALOHA minislots."""
        kwargs = dict(num_voice=30, num_data=30,
                      data_arrival_probability=0.08,
                      voice_slots=10, data_slots=6, seed=12)
        dtdma = DynamicTDMA(reservation_slots=4, **kwargs).run(400)
        rama = RAMA(auction_slots=4, **kwargs).run(400)
        assert rama.throughput() > dtdma.throughput()

    def test_drma_no_reservation_overhead_when_saturated(self):
        """DRMA converts slots to reservations only when capacity is
        spare; once the voice population owns every slot, (almost) every
        slot carries payload -- no standing reservation overhead."""
        protocol = DRMA(num_voice=12, num_data=0, slots_per_frame=10,
                        voice_model=VoiceModel(mean_spurt_frames=10000,
                                               mean_silence_frames=1),
                        seed=13)
        stats = protocol.run(600)
        assert stats.throughput() > 0.7
        # At most 10 grants ever coexist (slot capacity).
        assert len(protocol.voice_grants) <= 10

    def test_voice_drop_probability_increases_with_population(self):
        small = DynamicTDMA(num_voice=8, num_data=0, voice_slots=10,
                            seed=14).run(400)
        large = DynamicTDMA(num_voice=60, num_data=0, voice_slots=10,
                            seed=14).run(400)
        assert large.voice_drop_probability() \
            >= small.voice_drop_probability()
        assert large.voice_drop_probability() > 0.05
