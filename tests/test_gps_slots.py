"""Tests for GPS slot management rules R1--R3 (Section 3.3)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.gps_slots import GpsSlotManager
from repro.phy import timing


class TestAdmission:
    def test_r2_first_unused_slot(self):
        mgr = GpsSlotManager()
        assert mgr.admit(10) == 0
        assert mgr.admit(11) == 1
        assert mgr.admit(12) == 2

    def test_admit_idempotent(self):
        mgr = GpsSlotManager()
        assert mgr.admit(10) == 0
        assert mgr.admit(10) == 0
        assert mgr.active_count == 1

    def test_capacity_limit(self):
        mgr = GpsSlotManager()
        for uid in range(8):
            assert mgr.admit(uid) is not None
        assert mgr.admit(99) is None
        assert mgr.active_count == 8

    def test_format_switch_at_three(self):
        mgr = GpsSlotManager()
        for uid in range(3):
            mgr.admit(uid)
        assert mgr.format_id == 2
        mgr.admit(3)
        assert mgr.format_id == 1
        mgr.leave(3)
        assert mgr.format_id == 2


class TestR3Consolidation:
    def test_hole_filled_by_highest(self):
        mgr = GpsSlotManager()
        for uid in (10, 11, 12, 13):
            mgr.admit(uid)
        moves = mgr.leave(11, cycle=5)
        assert len(moves) == 1
        assert moves[0].uid == 13
        assert moves[0].old_slot == 3
        assert moves[0].new_slot == 1
        assert mgr.occupied_slots() == [0, 1, 2]

    def test_leaving_highest_needs_no_move(self):
        mgr = GpsSlotManager()
        for uid in (10, 11, 12):
            mgr.admit(uid)
        assert mgr.leave(12) == []
        assert mgr.occupied_slots() == [0, 1]

    def test_r3_moves_only_to_earlier_slots(self):
        """Moving earlier can only shorten the inter-access gap (QoS)."""
        rng = random.Random(11)
        mgr = GpsSlotManager()
        population = []
        next_uid = 0
        for _ in range(300):
            if population and rng.random() < 0.5:
                uid = rng.choice(population)
                population.remove(uid)
                mgr.leave(uid)
            elif len(population) < 8:
                mgr.admit(next_uid)
                population.append(next_uid)
                next_uid += 1
            mgr.check_invariants()
        for move in mgr.reassignments:
            assert move.new_slot < move.old_slot

    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 7)),
                    max_size=60))
    @settings(max_examples=50)
    def test_invariants_under_arbitrary_churn(self, operations):
        mgr = GpsSlotManager()
        population = []
        next_uid = 0
        for is_leave, index in operations:
            if is_leave and population:
                uid = population.pop(index % len(population))
                mgr.leave(uid)
            elif not is_leave and len(population) < 8:
                mgr.admit(next_uid)
                population.append(next_uid)
                next_uid += 1
            mgr.check_invariants()
            # Occupied slots form a prefix: unused GPS time is contiguous
            # at the end of the GPS region and convertible to data slots.
            assert mgr.occupied_slots() == list(range(len(population)))

    def test_leave_unknown_uid_is_noop(self):
        mgr = GpsSlotManager()
        mgr.admit(1)
        assert mgr.leave(99) == []
        assert mgr.active_count == 1


class TestStaticMode:
    """dynamic=False models the naive scheme the paper argues against."""

    def test_holes_persist(self):
        mgr = GpsSlotManager(dynamic=False)
        for uid in (1, 2, 3, 4, 5):
            mgr.admit(uid)
        mgr.leave(2)
        mgr.leave(4)
        assert mgr.occupied_slots() == [0, 2, 4]  # holes at 1 and 3

    def test_always_format_1(self):
        mgr = GpsSlotManager(dynamic=False)
        mgr.admit(1)
        assert mgr.format_id == 1
        assert mgr.layout() is timing.FORMAT1

    def test_holes_reused_on_admit(self):
        mgr = GpsSlotManager(dynamic=False)
        for uid in (1, 2, 3):
            mgr.admit(uid)
        mgr.leave(2)
        assert mgr.admit(4) == 1  # R2 still applies

    def test_check_invariants_tolerates_holes(self):
        mgr = GpsSlotManager(dynamic=False)
        mgr.admit(1)
        mgr.admit(2)
        mgr.leave(1)
        mgr.check_invariants()  # holes are legal in static mode


class TestSchedule:
    def test_schedule_matches_layout(self):
        mgr = GpsSlotManager()
        mgr.admit(7)
        mgr.admit(8)
        schedule = mgr.schedule()
        assert len(schedule) == timing.FORMAT2_GPS_SLOTS
        assert schedule[0] == 7
        assert schedule[1] == 8
        assert schedule[2] is None

    def test_schedule_format1(self):
        mgr = GpsSlotManager()
        for uid in range(5):
            mgr.admit(uid)
        schedule = mgr.schedule()
        assert len(schedule) == timing.FORMAT1_GPS_SLOTS
        assert schedule[:5] == [0, 1, 2, 3, 4]

    def test_slot_of(self):
        mgr = GpsSlotManager()
        mgr.admit(42)
        assert mgr.slot_of(42) == 0
        assert mgr.slot_of(1) is None
