"""Tests for the half-duplex radio audit (Section 2.2)."""

import pytest

from repro.core.radio import RX, TX, HalfDuplexRadio


class TestOverlap:
    def test_tx_rx_overlap_violates(self):
        radio = HalfDuplexRadio()
        radio.claim(TX, 0.0, 1.0)
        radio.claim(RX, 0.5, 1.5)
        assert len(radio.violations) == 1
        assert "overlap" in radio.violations[0].reason

    def test_tx_tx_overlap_violates(self):
        """One transmitter: two simultaneous transmissions are impossible."""
        radio = HalfDuplexRadio()
        radio.claim(TX, 0.0, 1.0)
        radio.claim(TX, 0.5, 1.5)
        assert len(radio.violations) == 1

    def test_rx_rx_overlap_allowed(self):
        radio = HalfDuplexRadio()
        radio.claim(RX, 0.0, 1.0)
        radio.claim(RX, 0.5, 1.5)
        assert radio.violations == []


class TestTurnaround:
    def test_tx_to_rx_needs_20ms(self):
        radio = HalfDuplexRadio()
        radio.claim(TX, 0.0, 1.0)
        radio.claim(RX, 1.010, 2.0)  # only 10 ms gap
        assert len(radio.violations) == 1
        assert "turnaround" in radio.violations[0].reason

    def test_rx_to_tx_needs_20ms(self):
        radio = HalfDuplexRadio()
        radio.claim(RX, 0.0, 1.0)
        radio.claim(TX, 1.005, 2.0)
        assert len(radio.violations) == 1

    def test_exactly_20ms_is_legal(self):
        radio = HalfDuplexRadio()
        radio.claim(TX, 0.0, 1.0)
        radio.claim(RX, 1.020, 2.0)
        assert radio.violations == []

    def test_same_kind_needs_no_turnaround(self):
        radio = HalfDuplexRadio()
        radio.claim(TX, 0.0, 1.0)
        radio.claim(TX, 1.001, 2.0)
        assert radio.violations == []

    def test_out_of_order_claims_still_audited(self):
        radio = HalfDuplexRadio()
        radio.claim(RX, 5.0, 6.0)
        radio.claim(TX, 5.5, 5.8)  # claimed later, overlaps earlier claim
        assert len(radio.violations) == 1


class TestHousekeeping:
    def test_prune_bounds_memory(self):
        radio = HalfDuplexRadio()
        for index in range(100):
            radio.claim(TX, float(index), index + 0.5)
        radio.prune(before=90.0)
        assert radio.claim_count < 15

    def test_empty_interval_rejected(self):
        radio = HalfDuplexRadio()
        with pytest.raises(ValueError):
            radio.claim(TX, 1.0, 1.0)

    def test_unknown_kind_rejected(self):
        radio = HalfDuplexRadio()
        with pytest.raises(ValueError):
            radio.claim("duplex", 0.0, 1.0)

    def test_violation_records_claims(self):
        radio = HalfDuplexRadio(owner="sub-1")
        first = radio.claim(TX, 0.0, 1.0, label="data@3")
        second = radio.claim(RX, 0.5, 1.5, label="cf1")
        violation = radio.violations[0]
        assert violation.first == first
        assert violation.second == second
        assert radio.owner == "sub-1"
