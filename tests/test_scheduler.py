"""Tests for the round-robin, forward, and contention schedulers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.scheduler import (
    ContentionController,
    ForwardScheduler,
    Interval,
    RoundRobinScheduler,
)
from repro.phy import timing


class TestRoundRobin:
    def test_equal_demand_split_evenly(self):
        scheduler = RoundRobinScheduler()
        grants = scheduler.allocate({1: 4, 2: 4}, 8)
        assert grants == {1: 4, 2: 4}

    def test_allocation_capped_by_demand(self):
        scheduler = RoundRobinScheduler()
        grants = scheduler.allocate({1: 2, 2: 1}, 8)
        assert grants == {1: 2, 2: 1}

    def test_allocation_capped_by_slots(self):
        scheduler = RoundRobinScheduler()
        grants = scheduler.allocate({1: 10, 2: 10}, 5)
        assert sum(grants.values()) == 5
        assert abs(grants[1] - grants[2]) <= 1

    def test_rotation_persists_across_cycles(self):
        """The pointer rotates: nobody is systematically favoured."""
        scheduler = RoundRobinScheduler()
        totals = {1: 0, 2: 0, 3: 0}
        for _ in range(30):
            grants = scheduler.allocate({1: 5, 2: 5, 3: 5}, 4)
            for uid, count in grants.items():
                totals[uid] += count
        # 30 cycles * 4 slots = 120 grants over 3 users -> 40 each
        assert totals == {1: 40, 2: 40, 3: 40}

    def test_zero_demand_users_skipped(self):
        scheduler = RoundRobinScheduler()
        grants = scheduler.allocate({1: 0, 2: 3}, 8)
        assert grants == {2: 3}

    def test_empty_demand(self):
        scheduler = RoundRobinScheduler()
        assert scheduler.allocate({}, 8) == {}
        assert scheduler.allocate({1: 5}, 0) == {}

    def test_user_removal_does_not_break_rotation(self):
        scheduler = RoundRobinScheduler()
        scheduler.allocate({1: 1, 2: 1, 3: 1}, 2)
        grants = scheduler.allocate({2: 2}, 2)
        assert grants == {2: 2}

    @given(st.dictionaries(st.integers(0, 62), st.integers(0, 20),
                           max_size=10),
           st.integers(0, 9))
    @settings(max_examples=80)
    def test_never_overgrants(self, demands, slots):
        scheduler = RoundRobinScheduler()
        grants = scheduler.allocate(demands, slots)
        assert sum(grants.values()) <= slots
        for uid, count in grants.items():
            assert count <= demands[uid]
        # work-conserving: all slots used unless demand ran out
        total_demand = sum(demands.values())
        assert sum(grants.values()) == min(slots, total_demand)

    @given(st.dictionaries(st.integers(0, 62),
                           st.integers(1, 20), min_size=2, max_size=8))
    @settings(max_examples=50)
    def test_max_fairness_of_grants(self, demands):
        """With ample demand, per-user grants differ by at most one."""
        scheduler = RoundRobinScheduler()
        slots = 8
        grants = scheduler.allocate({uid: 100 for uid in demands}, slots)
        counts = list(grants.values())
        assert max(counts) - min(counts) <= 1


class TestSlotLumping:
    def test_slots_contiguous_per_user(self):
        scheduler = RoundRobinScheduler()
        grants = {1: 3, 2: 2, 3: 1}
        assignment = scheduler.layout_slots(grants, 9, [0])
        # Each user's slots must be contiguous (Section 3.5): the
        # subscriber switches TX/RX at most once per cycle.
        for uid in grants:
            slots = [i for i, u in enumerate(assignment) if u == uid]
            assert slots == list(range(slots[0], slots[0] + len(slots)))

    def test_contention_slots_left_unassigned(self):
        scheduler = RoundRobinScheduler()
        assignment = scheduler.layout_slots({1: 2}, 9, [0, 1])
        assert assignment[0] is None
        assert assignment[1] is None
        assert assignment[2] == 1
        assert assignment[3] == 1

    def test_overflow_rejected(self):
        scheduler = RoundRobinScheduler()
        with pytest.raises(ValueError):
            scheduler.layout_slots({1: 9}, 9, [0])


class TestForwardScheduler:
    def _reverse_tx(self, uid, start, end):
        return {uid: [Interval(start, end)]}

    def test_simple_round_robin(self):
        scheduler = ForwardScheduler()
        assignment = scheduler.allocate({1: 2, 2: 2}, {}, None, 0.0)
        assigned = [uid for uid in assignment if uid is not None]
        assert sorted(assigned) == [1, 1, 2, 2]

    def test_cf2_listener_never_gets_slot0(self):
        scheduler = ForwardScheduler()
        assignment = scheduler.allocate({5: 40}, {}, 5, 0.0)
        assert assignment[0] is None
        assert assignment[1] == 5

    def test_half_duplex_margin_respected(self):
        """No forward slot within 20 ms of the user's reverse TX."""
        scheduler = ForwardScheduler()
        # Reverse TX covering forward slots 2-4's time range.
        slot2 = timing.forward_slot_offset(2)
        slot4_end = timing.forward_slot_offset(4) + timing.FORWARD_SLOT_TIME
        reverse_tx = self._reverse_tx(1, slot2, slot4_end)
        assignment = scheduler.allocate({1: 37}, reverse_tx, None, 0.0)
        margin = timing.MS_TURNAROUND_TIME
        for index, uid in enumerate(assignment):
            if uid != 1:
                continue
            start = timing.forward_slot_offset(index)
            end = start + timing.FORWARD_SLOT_TIME
            assert end + margin <= slot2 + 1e-9 \
                or start - margin >= slot4_end - 1e-9

    def test_conflicting_user_skipped_not_starved(self):
        scheduler = ForwardScheduler()
        slot0 = timing.forward_slot_offset(0)
        reverse_tx = self._reverse_tx(
            1, slot0 - 0.01, slot0 + timing.FORWARD_SLOT_TIME + 0.01)
        assignment = scheduler.allocate({1: 1, 2: 1}, reverse_tx,
                                        None, 0.0)
        # User 2 takes slot 0; user 1 is placed in a later slot.
        assert assignment[0] == 2
        assert 1 in assignment

    def test_no_demand_returns_idle_schedule(self):
        scheduler = ForwardScheduler()
        assignment = scheduler.allocate({}, {}, None, 0.0)
        assert assignment == [None] * timing.NUM_FORWARD_DATA_SLOTS

    def test_absolute_times_used(self):
        """Constraints are evaluated at absolute times (cycle_start)."""
        scheduler = ForwardScheduler()
        cycle_start = 100 * timing.CYCLE_LENGTH
        slot1 = cycle_start + timing.forward_slot_offset(1)
        reverse_tx = self._reverse_tx(
            1, slot1, slot1 + timing.FORWARD_SLOT_TIME)
        assignment = scheduler.allocate({1: 37}, reverse_tx, None,
                                        cycle_start)
        assert assignment[1] is None or assignment[1] != 1


class TestInterval:
    def test_overlaps(self):
        assert Interval(0, 2).overlaps(Interval(1, 3))
        assert not Interval(0, 1).overlaps(Interval(1, 2))

    def test_expanded(self):
        expanded = Interval(1.0, 2.0).expanded(0.5)
        assert expanded.start == 0.5
        assert expanded.end == 2.5


class TestContentionController:
    def test_grows_on_heavy_collisions(self):
        controller = ContentionController(min_slots=1, max_slots=3)
        assert controller.update(collided_slots=2, unused_slots=0) == 2

    def test_grows_on_consecutive_collision_cycles(self):
        controller = ContentionController(min_slots=1, max_slots=3)
        assert controller.update(1, 0) == 1
        assert controller.update(1, 0) == 2

    def test_capped_at_max(self):
        controller = ContentionController(min_slots=1, max_slots=2)
        for _ in range(5):
            controller.update(3, 0)
        assert controller.current == 2

    def test_shrinks_on_unused(self):
        controller = ContentionController(min_slots=1, max_slots=3)
        controller.update(2, 0)
        controller.update(2, 0)
        assert controller.current == 3
        assert controller.update(0, 2) == 2
        assert controller.update(0, 2) == 1
        assert controller.update(0, 2) == 1  # floor at min

    def test_collision_streak_reset_by_quiet_cycle(self):
        controller = ContentionController(min_slots=1, max_slots=3)
        controller.update(1, 0)
        controller.update(0, 0)
        assert controller.update(1, 0) == 1  # streak restarted

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            ContentionController(min_slots=0, max_slots=3)
        with pytest.raises(ValueError):
            ContentionController(min_slots=3, max_slots=2)
