"""Tests for the hot-path refactor: shared overlap helper, the
reference-aware RS fast path, and old-vs-new kernel bit-identity.

The full-grid differential run lives in
``python -m repro.experiments kernel-diff`` (and the CI job); the
tier-1 slice here covers a representative sample of configurations so
the identity property is exercised on every test run.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.core.cell import build_cell, finalize_run, run_cell
from repro.experiments.chaos import chaos_config
from repro.experiments.kernel_diff import (
    legacy_variant,
    run_cell_summary_legacy,
)
from repro.experiments.runner import sweep_cell_config, sweep_spec
from repro.phy.errors import GilbertElliottModel, IndependentSymbolErrors
from repro.phy.intervals import spans_overlap
from repro.phy.rs import RS_64_48, RSDecodeFailure
from repro.sim.legacy import LegacySimulator


class TestSpansOverlap:
    """Half-open interval semantics shared by channel and scheduler."""

    def test_overlapping(self):
        assert spans_overlap(0.0, 2.0, 1.0, 3.0)
        assert spans_overlap(1.0, 3.0, 0.0, 2.0)

    def test_containment(self):
        assert spans_overlap(0.0, 10.0, 4.0, 5.0)
        assert spans_overlap(4.0, 5.0, 0.0, 10.0)

    def test_identical(self):
        assert spans_overlap(1.0, 2.0, 1.0, 2.0)

    def test_disjoint(self):
        assert not spans_overlap(0.0, 1.0, 2.0, 3.0)
        assert not spans_overlap(2.0, 3.0, 0.0, 1.0)

    def test_edge_touch_is_not_overlap(self):
        # [0, 1) and [1, 2) share only the boundary point, which the
        # half-open convention assigns to the second interval.
        assert not spans_overlap(0.0, 1.0, 1.0, 2.0)
        assert not spans_overlap(1.0, 2.0, 0.0, 1.0)

    def test_transmission_and_interval_agree(self):
        from repro.core.scheduler import Interval
        from repro.phy.channel import Transmission

        cases = [((0.0, 1.0), (1.0, 2.0)), ((0.0, 2.0), (1.0, 3.0)),
                 ((0.0, 1.0), (2.0, 3.0)), ((1.0, 2.0), (1.0, 2.0))]
        for (a_start, a_end), (b_start, b_end) in cases:
            expected = spans_overlap(a_start, a_end, b_start, b_end)
            first = Transmission(sender="a", payload=None, start=a_start,
                                 duration=a_end - a_start)
            second = Transmission(sender="b", payload=None, start=b_start,
                                  duration=b_end - b_start)
            assert first.overlaps(second) == expected
            assert (Interval(a_start, a_end).overlaps(
                Interval(b_start, b_end)) == expected)


class TestDecodeReferenceOracle:
    """decode_reference must agree with the full decoder on every input."""

    def _assert_agree(self, received: bytes, clean: bytes) -> None:
        codec = RS_64_48
        try:
            oracle = codec.decode(received)
            oracle_failed = False
        except RSDecodeFailure:
            oracle, oracle_failed = None, True
        try:
            fast = codec.decode_reference(received, clean)
            fast_failed = False
        except RSDecodeFailure:
            fast, fast_failed = None, True
        assert fast_failed == oracle_failed
        assert fast == oracle

    @pytest.mark.parametrize("errors", list(range(0, 17)))
    def test_exact_error_counts(self, errors):
        rng = random.Random(1000 + errors)
        codec = RS_64_48
        for _ in range(8):
            message = bytes(rng.randrange(256) for _ in range(codec.k))
            clean = codec.encode(message)
            word = bytearray(clean)
            for position in rng.sample(range(codec.n), errors):
                word[position] ^= rng.randrange(1, 256)
            self._assert_agree(bytes(word), clean)

    @pytest.mark.parametrize("state", [GilbertElliottModel.GOOD,
                                       GilbertElliottModel.BAD])
    def test_gilbert_elliott_states(self, state):
        """Sweep both GE channel states against the oracle."""
        rng = random.Random(77 + state)
        codec = RS_64_48
        model = GilbertElliottModel(p_good=0.01, p_bad=0.5,
                                    p_good_to_bad=0.05,
                                    p_bad_to_good=0.05)
        for trial in range(60):
            model.state = state
            message = bytes(rng.randrange(256) for _ in range(codec.k))
            clean = codec.encode(message)
            received = bytes(model.corrupt(clean, rng))
            self._assert_agree(received, clean)

    def test_independent_symbol_errors(self):
        rng = random.Random(5)
        codec = RS_64_48
        for rate in (0.0, 0.05, 0.2):
            model = IndependentSymbolErrors(rate)
            for _ in range(25):
                message = bytes(rng.randrange(256)
                                for _ in range(codec.k))
                clean = codec.encode(message)
                received = bytes(model.corrupt(clean, rng))
                self._assert_agree(received, clean)

    def test_length_mismatch_falls_back(self):
        codec = RS_64_48
        clean = codec.encode(bytes(codec.k))
        with pytest.raises(RSDecodeFailure):
            codec.decode_reference(clean[:-1], clean)

    def test_clean_word_skips_decoder(self):
        codec = RS_64_48
        message = bytes(range(48))
        clean = codec.encode(message)
        assert codec.decode_reference(clean, clean) == message


class TestGilbertElliottDrawOrder:
    """The inlined corrupt() must consume RNG draws like the old loop."""

    def test_matches_reference_loop(self):
        model = GilbertElliottModel(p_good=0.1, p_bad=0.6,
                                    p_good_to_bad=0.1, p_bad_to_good=0.2)
        reference = GilbertElliottModel(p_good=0.1, p_bad=0.6,
                                        p_good_to_bad=0.1,
                                        p_bad_to_good=0.2)
        word = bytes(range(64))
        rng_a = random.Random(42)
        rng_b = random.Random(42)
        for _ in range(20):
            out = model.corrupt(word, rng_a)
            # Reference implementation: explicit per-symbol _step.
            expected = list(word)
            for index in range(len(expected)):
                reference._step(rng_b)
                p = (reference.p_bad
                     if reference.state == reference.BAD
                     else reference.p_good)
                if rng_b.random() < p:
                    expected[index] ^= rng_b.randrange(1, 256)
            assert out == expected
            assert model.state == reference.state
            assert rng_a.getstate() == rng_b.getstate()


class TestKernelBitIdentity:
    """Calendar kernel == legacy heap kernel, summary-for-summary."""

    @pytest.mark.parametrize("load,seed", [(0.9, 1), (1.1, 2)])
    def test_fig8_point(self, load, seed):
        config = sweep_cell_config(load, seed, quick=True)
        new_summary = run_cell(config).summary()
        legacy_summary = run_cell_summary_legacy(config)
        assert (json.dumps(new_summary, sort_keys=True)
                == json.dumps(legacy_summary, sort_keys=True))

    def test_chaos_point(self):
        config = chaos_config(1.0, 1.0, seed=1, quick=True)
        new_summary = run_cell(config).summary()
        legacy_summary = run_cell_summary_legacy(config)
        assert (json.dumps(new_summary, sort_keys=True)
                == json.dumps(legacy_summary, sort_keys=True))

    def test_legacy_variant_rewrites_points(self):
        spec = sweep_spec(quick=True)
        legacy = legacy_variant(spec)
        assert len(legacy.points) == len(spec.points)
        assert all(point.fn is run_cell_summary_legacy
                   for point in legacy.points)
        assert [point.label for point in legacy.points] \
            == [point.label for point in spec.points]

    def test_legacy_simulator_is_driveable(self):
        config = sweep_cell_config(0.5, 3, quick=True)
        run = build_cell(config, sim=LegacySimulator())
        run.sim.run(until=config.duration)
        finalize_run(run)
        summary = run.stats.summary()
        assert summary["radio_violations"] == 0
