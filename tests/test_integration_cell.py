"""Integration tests: full-cell simulations and protocol invariants.

These exercise the complete OSU-MAC stack -- base station, subscribers,
GPS units, channels -- and assert the properties the paper's design
guarantees: half-duplex safety, registration convergence, GPS temporal
QoS, reliable data delivery, and the documented behaviour of the
two-control-field structure and dynamic slot adjustment.
"""

import pytest

from repro import CellConfig, run_cell, run_cell_detailed
from repro.core.subscriber import ACTIVE
from repro.phy import timing


def small_config(**overrides):
    defaults = dict(num_data_users=6, num_gps_users=2, load_index=0.5,
                    cycles=80, warmup_cycles=15, seed=11)
    defaults.update(overrides)
    return CellConfig(**defaults)


class TestBasicOperation:
    def test_everyone_registers(self):
        run = run_cell_detailed(small_config())
        assert all(u.state == ACTIVE for u in run.data_users)
        assert all(g.state == ACTIVE for g in run.gps_units)
        assert run.stats.registrations_completed == 8

    def test_user_ids_unique(self):
        run = run_cell_detailed(small_config())
        uids = [u.uid for u in run.data_users + run.gps_units]
        assert len(uids) == len(set(uids))
        assert all(0 <= uid <= 62 for uid in uids)

    def test_data_flows(self):
        stats = run_cell(small_config())
        assert stats.data_packets_delivered > 50
        assert stats.messages_delivered > 10
        assert stats.message_loss_rate() == 0.0

    def test_gps_reports_flow(self):
        stats = run_cell(small_config())
        assert stats.gps_packets_delivered > 100
        # Perfect channel: everything transmitted is delivered.
        assert stats.gps_packets_delivered == stats.gps_packets_sent

    def test_no_half_duplex_violations(self):
        """The scheduling constraints (i)-(iii) and the two-control-field
        listening rules must keep every subscriber's radio timeline legal."""
        stats = run_cell(small_config())
        assert stats.radio_violations == 0

    def test_deterministic_given_seed(self):
        first = run_cell(small_config(seed=42)).summary()
        second = run_cell(small_config(seed=42)).summary()
        assert first == second

    def test_different_seeds_differ(self):
        first = run_cell(small_config(seed=1)).summary()
        second = run_cell(small_config(seed=2)).summary()
        assert first != second


class TestLoadBehaviour:
    def test_utilization_tracks_light_load(self):
        stats = run_cell(small_config(load_index=0.3, cycles=200,
                                      warmup_cycles=30, num_data_users=9))
        assert stats.utilization() == pytest.approx(0.3, abs=0.08)

    def test_utilization_saturates_below_one(self):
        stats = run_cell(small_config(load_index=1.1, cycles=200,
                                      warmup_cycles=30, num_data_users=9))
        # Capacity is bounded by (d - contention) / d = 8/9.
        assert stats.utilization() <= 8 / 9 + 0.02
        assert stats.utilization() > 0.8

    def test_overload_drops_messages(self):
        stats = run_cell(small_config(load_index=1.1, cycles=200,
                                      warmup_cycles=30,
                                      buffer_packets=30))
        assert stats.messages_dropped > 0

    def test_delay_grows_with_load(self):
        low = run_cell(small_config(load_index=0.3, cycles=150,
                                    warmup_cycles=20))
        high = run_cell(small_config(load_index=1.0, cycles=150,
                                     warmup_cycles=20))
        assert high.mean_message_delay_cycles() \
            > 2 * low.mean_message_delay_cycles()

    def test_light_load_delay_is_a_few_cycles(self):
        """Fig. 8(b): packets delivered in ~3-5 cycles under light load."""
        stats = run_cell(small_config(load_index=0.3, cycles=200,
                                      warmup_cycles=30))
        assert 1.0 < stats.mean_message_delay_cycles() < 6.0

    def test_control_overhead_decreases_with_load(self):
        """Fig. 9/10: piggybacking displaces reservation packets."""
        low = run_cell(small_config(load_index=0.3, cycles=250,
                                    warmup_cycles=30, num_data_users=9))
        high = run_cell(small_config(load_index=1.1, cycles=250,
                                     warmup_cycles=30, num_data_users=9))
        assert high.control_overhead() < low.control_overhead()

    def test_fairness_high_under_saturation(self):
        """Fig. 11: round-robin keeps the Jain index near 1."""
        stats = run_cell(small_config(load_index=1.0, cycles=300,
                                      warmup_cycles=30, num_data_users=9))
        assert stats.fairness() > 0.97


class TestReliability:
    def test_acked_packets_not_retransmitted(self):
        """Perfect channel: sent == delivered (no spurious retransmits
        once contention losses are excluded)."""
        run = run_cell_detailed(small_config(load_index=0.4))
        stats = run.stats
        retransmissions = stats.data_packets_sent \
            - stats.data_packets_delivered
        # Only contention-slot collisions may cost transmissions.
        assert retransmissions <= stats.contention_attempts_collided + 2

    def test_lossy_channel_still_delivers(self):
        """Outage losses trigger retransmission via the ACK machinery."""
        stats = run_cell(small_config(
            error_model="outage", outage_loss=0.08, load_index=0.4,
            cycles=150, warmup_cycles=20))
        assert stats.data_packets_delivered > 30
        assert stats.radio_violations == 0
        assert stats.data_packets_sent > stats.data_packets_delivered
        assert stats.cf_losses > 0

    def test_lossy_channel_message_completion(self):
        run = run_cell_detailed(small_config(
            error_model="outage", outage_loss=0.05, load_index=0.3,
            cycles=200, warmup_cycles=20))
        stats = run.stats
        # Messages eventually complete despite losses.
        assert stats.messages_delivered >= 0.8 * stats.messages_generated \
            - stats.messages_dropped - 5


class TestTwoControlFields:
    def test_last_slot_carries_data_under_load(self):
        """Fig. 12(a): the second CF set makes the last reverse data slot
        usable; under load it carries ~1/8 of the packets."""
        stats = run_cell(small_config(load_index=1.0, cycles=200,
                                      warmup_cycles=30, num_data_users=9))
        assert stats.data_packets_in_last_slot > 0
        assert 0.04 < stats.second_cf_gain() < 0.16

    def test_without_second_cf_last_slot_unused(self):
        stats = run_cell(small_config(load_index=1.0, cycles=200,
                                      warmup_cycles=30, num_data_users=9,
                                      use_second_cf=False))
        assert stats.data_packets_in_last_slot == 0
        assert stats.second_cf_gain() == 0.0
        assert stats.radio_violations == 0

    def test_second_cf_improves_throughput(self):
        base = small_config(load_index=1.1, cycles=250, warmup_cycles=30,
                            num_data_users=9)
        with_cf2 = run_cell(base)
        without = run_cell(small_config(load_index=1.1, cycles=250,
                                        warmup_cycles=30,
                                        num_data_users=9,
                                        use_second_cf=False))
        assert with_cf2.utilization() > without.utilization()


class TestGpsQoS:
    def test_access_delay_bounded(self):
        """Section 2.1: every GPS report transmitted within 4 seconds."""
        stats = run_cell(small_config(num_gps_users=8, cycles=150,
                                      warmup_cycles=20))
        assert stats.gps_packets_sent > 500
        assert stats.gps_deadline_misses == 0
        assert stats.gps_access_delay.max < timing.GPS_DEADLINE

    def test_gps_qos_independent_of_data_load(self):
        stats = run_cell(small_config(num_gps_users=8, load_index=1.1,
                                      cycles=150, warmup_cycles=20,
                                      num_data_users=9))
        assert stats.gps_deadline_misses == 0

    def test_format_2_used_with_few_gps_users(self):
        run = run_cell_detailed(small_config(num_gps_users=2))
        record = run.base_station.record_for(run.base_station.cycle - 1)
        assert record.layout.format_id == 2
        assert record.layout.data_slots == 9

    def test_format_1_used_with_many_gps_users(self):
        run = run_cell_detailed(small_config(num_gps_users=5))
        record = run.base_station.record_for(run.base_station.cycle - 1)
        assert record.layout.format_id == 1
        assert record.layout.data_slots == 8

    def test_static_adjustment_wastes_slots(self):
        """Fig. 12(b): without dynamic adjustment, one GPS user still
        costs the whole format-1 GPS region."""
        dynamic = run_cell(small_config(num_gps_users=1, load_index=1.1,
                                        cycles=200, warmup_cycles=30,
                                        num_data_users=9))
        static = run_cell(small_config(num_gps_users=1, load_index=1.1,
                                       cycles=200, warmup_cycles=30,
                                       num_data_users=9,
                                       dynamic_slot_adjustment=False))
        assert dynamic.mean_data_slots_used() \
            > static.mean_data_slots_used()
        assert dynamic.radio_violations == 0
        assert static.radio_violations == 0


class TestGpsChurn:
    def test_sign_off_consolidates_and_preserves_qos(self):
        """R3 reassignment under churn never violates the 4 s deadline."""
        run = build = None
        from repro.core.cell import build_cell
        config = small_config(num_gps_users=8, cycles=160,
                              warmup_cycles=10, seed=5)
        run = build_cell(config)
        bs = run.base_station

        # Sign off GPS units at various points mid-run.
        def sign_off_later(unit, when):
            def action():
                if unit.uid is not None:
                    bs.sign_off(unit.uid)
            run.sim.call_at(when, action)

        for index, unit in enumerate(run.gps_units[:5]):
            sign_off_later(unit, (40 + 15 * index) * timing.CYCLE_LENGTH)

        run.sim.run(until=config.duration)
        stats = run.stats
        for unit in run.gps_units:
            stats.radio_violations += len(unit.radio.violations)
        for user in run.data_users:
            stats.radio_violations += len(user.radio.violations)

        assert stats.gps_deadline_misses == 0
        assert stats.radio_violations == 0
        bs.gps_mgr.check_invariants()
        # 3 remain -> format 2 with consolidated slots.
        assert bs.gps_mgr.active_count == 3
        assert bs.gps_mgr.format_id == 2
        assert bs.gps_mgr.occupied_slots() == [0, 1, 2]
        assert bs.gps_mgr.reassignments  # R3 actually fired


class TestRegistrationStorm:
    def test_simultaneous_storm_converges(self):
        run = run_cell_detailed(small_config(
            num_data_users=12, num_gps_users=8, cycles=80,
            warmup_cycles=20, seed=9))
        assert run.stats.registrations_completed == 20
        assert run.stats.registration_latency_cycles.max <= 40

    def test_poisson_arrivals_meet_design_goal(self):
        """Section 2.1: 80% within 2 cycles, 99% within 10 (for sparse
        arrivals, the intended operating regime)."""
        stats = run_cell(small_config(
            num_data_users=14, num_gps_users=8, cycles=120,
            warmup_cycles=30, registration_mode="poisson",
            registration_rate=0.05, seed=21))
        assert stats.registrations_completed >= 20
        assert stats.registration_cdf(2) >= 0.8
        assert stats.registration_cdf(10) >= 0.95


class TestForwardChannel:
    def test_downlink_delivery(self):
        stats = run_cell(small_config(forward_load_index=0.3,
                                      cycles=120, warmup_cycles=20))
        assert stats.forward_packets_delivered > 50
        assert stats.forward_packets_delivered == stats.forward_packets_sent
        assert stats.radio_violations == 0

    def test_downlink_with_uplink_respects_half_duplex(self):
        stats = run_cell(small_config(forward_load_index=0.5,
                                      load_index=0.9, cycles=150,
                                      warmup_cycles=20, num_data_users=9))
        assert stats.radio_violations == 0
        assert stats.forward_packets_delivered > 100


class TestPaging:
    def test_paging_announced_in_cf(self):
        from repro.core.cell import build_cell
        config = small_config(cycles=40, warmup_cycles=10)
        run = build_cell(config)
        captured = []

        original = run.base_station._make_cf

        def capture(record, which):
            cf = original(record, which)
            if cf.paging and any(uid is not None for uid in cf.paging):
                captured.append((cf.cycle, which, list(cf.paging)))
            return cf

        run.base_station._make_cf = capture
        run.sim.call_at(10 * timing.CYCLE_LENGTH,
                        lambda: run.base_station.page(17))
        run.sim.run(until=config.duration)
        assert captured
        assert captured[0][2][0] == 17
