"""Unit and property tests for GF(2^8) arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.phy.gf256 import GF256, FIELD_SIZE, PRIMITIVE_POLY

elements = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


class TestFieldAxioms:
    @given(elements, elements)
    def test_addition_is_xor_and_commutative(self, a, b):
        assert GF256.add(a, b) == (a ^ b) == GF256.add(b, a)

    @given(elements)
    def test_addition_self_inverse(self, a):
        assert GF256.add(a, a) == 0

    @given(elements, elements)
    def test_multiplication_commutative(self, a, b):
        assert GF256.mul(a, b) == GF256.mul(b, a)

    @given(elements, elements, elements)
    def test_multiplication_associative(self, a, b, c):
        assert GF256.mul(GF256.mul(a, b), c) == GF256.mul(a, GF256.mul(b, c))

    @given(elements, elements, elements)
    def test_distributivity(self, a, b, c):
        left = GF256.mul(a, GF256.add(b, c))
        right = GF256.add(GF256.mul(a, b), GF256.mul(a, c))
        assert left == right

    @given(elements)
    def test_multiplicative_identity(self, a):
        assert GF256.mul(a, 1) == a

    @given(elements)
    def test_zero_annihilates(self, a):
        assert GF256.mul(a, 0) == 0

    @given(nonzero)
    def test_inverse(self, a):
        assert GF256.mul(a, GF256.inv(a)) == 1

    @given(nonzero, nonzero)
    def test_division_inverts_multiplication(self, a, b):
        assert GF256.div(GF256.mul(a, b), b) == a

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            GF256.div(1, 0)
        with pytest.raises(ZeroDivisionError):
            GF256.inv(0)

    @given(nonzero, st.integers(min_value=0, max_value=300))
    def test_pow_matches_repeated_multiplication(self, a, n):
        expected = 1
        for _ in range(n):
            expected = GF256.mul(expected, a)
        assert GF256.pow(a, n) == expected

    def test_pow_zero_cases(self):
        assert GF256.pow(0, 0) == 1
        assert GF256.pow(0, 5) == 0
        with pytest.raises(ZeroDivisionError):
            GF256.pow(0, -1)

    def test_generator_has_full_order(self):
        """alpha = 2 generates the full multiplicative group (order 255)."""
        seen = set()
        value = 1
        for _ in range(255):
            seen.add(value)
            value = GF256.mul(value, 2)
        assert len(seen) == 255
        assert value == 1  # alpha^255 = 1

    def test_exp_log_roundtrip(self):
        for a in range(1, FIELD_SIZE):
            assert GF256.exp[GF256.log[a]] == a


class TestPolynomials:
    def test_poly_eval_horner(self):
        # p(x) = x^2 + 3 over GF(256): p(2) = 4 ^ 3 = 7
        assert GF256.poly_eval([1, 0, 3], 2) == 7

    def test_poly_mul_identity(self):
        assert GF256.poly_mul([1], [5, 6, 7]) == [5, 6, 7]

    @given(st.lists(elements, min_size=1, max_size=8),
           st.lists(elements, min_size=1, max_size=8), elements)
    def test_poly_mul_matches_eval(self, p, q, x):
        product = GF256.poly_mul(p, q)
        assert GF256.poly_eval(product, x) == GF256.mul(
            GF256.poly_eval(p, x), GF256.poly_eval(q, x))

    @given(st.lists(elements, min_size=1, max_size=8),
           st.lists(elements, min_size=1, max_size=8), elements)
    def test_poly_add_matches_eval(self, p, q, x):
        total = GF256.poly_add(p, q)
        assert GF256.poly_eval(total, x) == GF256.add(
            GF256.poly_eval(p, x), GF256.poly_eval(q, x))

    @given(st.lists(elements, min_size=2, max_size=10),
           st.lists(elements, min_size=1, max_size=5).filter(
               lambda c: any(c)))
    def test_divmod_reconstructs(self, dividend, divisor):
        quotient, remainder = GF256.poly_divmod(dividend, divisor)
        # dividend == quotient * divisor + remainder (as polynomials)
        product = GF256.poly_mul(quotient, GF256.poly_strip(divisor))
        reconstructed = GF256.poly_add(product, remainder)
        assert (GF256.poly_strip(reconstructed)
                == GF256.poly_strip(dividend))

    def test_divmod_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            GF256.poly_divmod([1, 2, 3], [0])

    def test_poly_strip(self):
        assert GF256.poly_strip([0, 0, 1, 2]) == [1, 2]
        assert GF256.poly_strip([0, 0]) == [0]

    def test_primitive_poly_constant(self):
        assert PRIMITIVE_POLY == 0x11D
