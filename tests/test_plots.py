"""Tests for the ASCII chart renderer."""

import pytest

from repro.experiments.plots import (
    ascii_chart,
    ascii_multi_chart,
    render_result,
)
from repro.experiments.runner import ExperimentResult


class TestAsciiChart:
    def test_basic_render(self):
        chart = ascii_chart([0, 1, 2], [0.0, 0.5, 1.0],
                            title="demo", x_label="load")
        assert "demo" in chart
        assert "load" in chart
        assert "*" in chart
        assert "1" in chart  # y max label

    def test_extremes_plotted_at_edges(self):
        chart = ascii_chart([0, 10], [0, 100], width=20, height=5)
        lines = chart.splitlines()
        plot_lines = [line for line in lines if "|" in line]
        # Max value on the top plot row, min on the bottom one.
        assert "*" in plot_lines[0]
        assert "*" in plot_lines[-1]

    def test_constant_series(self):
        chart = ascii_chart([0, 1, 2], [5, 5, 5])
        assert "*" in chart  # no division-by-zero on flat data

    def test_single_point(self):
        chart = ascii_chart([1], [3])
        assert "*" in chart

    def test_multi_series_legend(self):
        chart = ascii_multi_chart(
            [0, 1], [("a", [0, 1], "*"), ("b", [1, 0], "o")])
        assert "* = a" in chart
        assert "o = b" in chart

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ascii_multi_chart([0, 1], [("a", [1], "*")])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_multi_chart([], [])


class TestRenderResult:
    def make_result(self):
        return ExperimentResult(
            experiment_id="demo", title="Demo",
            headers=["load", "util", "delay"],
            rows=[[0.3, 0.3, 2.0], [0.9, 0.85, 10.0], [1.1, 0.88, 30.0]])

    def test_render_all_numeric_columns(self):
        chart = render_result(self.make_result(), "load")
        assert "* = util" in chart
        assert "o = delay" in chart

    def test_render_selected_column(self):
        chart = render_result(self.make_result(), "load", ["util"])
        assert "Demo" in chart
        assert "delay" not in chart
