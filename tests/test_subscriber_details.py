"""Focused tests of subscriber behaviour: queues, backoff, CF rules."""

import pytest

from repro.core.cell import build_cell, run_cell_detailed
from repro.core.config import CellConfig
from repro.core.subscriber import ACTIVE, DATA_ON_AIR, GPS_ON_AIR
from repro.phy import timing
from repro.traffic.messages import Message


def build(**overrides):
    defaults = dict(num_data_users=4, num_gps_users=2, load_index=0.5,
                    cycles=60, warmup_cycles=10, seed=23)
    defaults.update(overrides)
    return build_cell(CellConfig(**defaults))


class TestOnAirDurations:
    def test_data_on_air_fits_in_slot_with_guard(self):
        assert DATA_ON_AIR + timing.GUARD_TIME \
            == pytest.approx(timing.DATA_SLOT_TIME)

    def test_gps_on_air_fits_in_slot_with_guard(self):
        assert GPS_ON_AIR + timing.GUARD_TIME \
            == pytest.approx(timing.GPS_SLOT_TIME)

    def test_adjacent_slots_never_overlap_on_air(self):
        """The guard time separates consecutive transmissions even when
        one subscriber holds adjacent (lumped) slots."""
        assert DATA_ON_AIR < timing.DATA_SLOT_TIME


class TestForwardSequenceApi:
    def test_next_forward_seq_allocates_monotonically(self):
        run = build()
        subscriber = run.data_users[0]
        assert subscriber.next_forward_seq() == 0
        assert subscriber.next_forward_seq() == 1
        assert subscriber.next_forward_seq() == 2


class TestBufferManagement:
    def test_buffer_overflow_drops_whole_message(self):
        run = build(buffer_packets=5)
        subscriber = run.data_users[0]
        run.sim.run(until=3 * timing.CYCLE_LENGTH)  # let it register
        assert subscriber.state == ACTIVE
        # 5-packet buffer: a 3-fragment message fits, twice does not.
        subscriber.submit_message(Message(message_id=1, size_bytes=120,
                                          created_at=run.sim.now))
        assert len(subscriber.queue) == 3
        subscriber.submit_message(Message(message_id=2, size_bytes=120,
                                          created_at=run.sim.now))
        assert len(subscriber.queue) == 3  # dropped in full

    def test_fragment_sizes_cover_message_exactly(self):
        run = build()
        subscriber = run.data_users[0]
        run.sim.run(until=3 * timing.CYCLE_LENGTH)
        subscriber.submit_message(Message(message_id=3, size_bytes=100,
                                          created_at=run.sim.now))
        fragments = list(subscriber.queue)
        assert [f.payload_len for f in fragments] == [44, 44, 12]
        assert [f.more for f in fragments] == [True, True, False]
        assert len({f.seq for f in fragments}) == 3

    def test_single_byte_message(self):
        run = build()
        subscriber = run.data_users[0]
        run.sim.run(until=3 * timing.CYCLE_LENGTH)
        subscriber.submit_message(Message(message_id=4, size_bytes=1,
                                          created_at=run.sim.now))
        assert len(subscriber.queue) == 1
        assert subscriber.queue[0].payload_len == 1
        assert subscriber.queue[0].more is False


class TestCf2ListeningRule:
    def test_last_slot_user_listens_to_cf2(self):
        """Track every cycle: whoever was assigned the last reverse data
        slot must mark itself as a CF2 listener for the next cycle."""
        run = build(load_index=1.1, cycles=50)
        mismatches = []
        original = run.base_station._build_cycle

        def check(t0):
            record = original(t0)
            previous = run.base_station.record_for(record.cycle - 1)
            if previous is None:
                return record
            last_user = previous.last_slot_user
            for subscriber in run.data_users:
                if subscriber.uid is None:
                    continue
                expected = (subscriber.uid == last_user)
                actual = (subscriber._cf2_cycle == record.cycle)
                if expected != actual:
                    mismatches.append((record.cycle, subscriber.uid))
            return record

        run.base_station._build_cycle = check
        run.sim.run(until=run.config.duration)
        # Allow mismatches only before registration completes.
        late = [item for item in mismatches
                if item[0] > 10]
        assert late == []

    def test_cf2_listener_still_gets_acks(self):
        """Packets sent in the last slot are acknowledged via CF2 and
        never spuriously retransmitted (perfect channel)."""
        run = run_cell_detailed(CellConfig(
            num_data_users=4, num_gps_users=2, load_index=1.1,
            cycles=80, warmup_cycles=15, seed=23))
        stats = run.stats
        # Every sent packet (outside contention collisions) is delivered.
        retransmissions = stats.data_packets_sent \
            - stats.data_packets_delivered
        assert retransmissions <= stats.contention_attempts_collided + 2


class TestBackoff:
    def test_backoff_caps_respected(self):
        run = build()
        subscriber = run.data_users[0]
        run.sim.run(until=3 * timing.CYCLE_LENGTH)
        pending = {"kind": "reservation", "attempts": 10,
                   "await_cycle": 1}
        subscriber._register_request_failure(pending)
        assert 1 <= subscriber._backoff_cycles \
            <= run.config.reservation_backoff_cap
        pending = {"kind": "data", "attempts": 10, "await_cycle": 1}
        subscriber._register_request_failure(pending)
        assert 1 <= subscriber._backoff_cycles \
            <= run.config.data_backoff_cap

    def test_data_backoff_longer_than_reservation(self):
        """Paper: data-in-contention senders back off longer."""
        run = build()
        subscriber = run.data_users[0]
        run.sim.run(until=3 * timing.CYCLE_LENGTH)
        samples = {"reservation": [], "data": []}
        for kind in samples:
            for _ in range(300):
                subscriber._register_request_failure(
                    {"kind": kind, "attempts": 6, "await_cycle": 1})
                samples[kind].append(subscriber._backoff_cycles)
        mean = lambda xs: sum(xs) / len(xs)
        assert mean(samples["data"]) > 1.5 * mean(samples["reservation"])

    def test_episode_continues_across_retries(self):
        """first_cycle/first_time survive a failed attempt, so the
        reservation latency episode is measured from the first try."""
        run = build()
        subscriber = run.data_users[0]
        run.sim.run(until=3 * timing.CYCLE_LENGTH)
        pending = {"kind": "reservation", "attempts": 1,
                   "await_cycle": 4, "first_cycle": 4,
                   "first_time": 16.0, "slot": 0}
        subscriber._pending_request = pending
        subscriber._register_request_failure(pending)
        assert subscriber._pending_request["first_cycle"] == 4
        assert subscriber._pending_request["await_cycle"] is None


class TestGpsUnitDetails:
    def test_reports_superseded_not_queued(self):
        """Only the freshest location matters; stale fixes are replaced."""
        run = build(gps_report_period=1.0)  # ~4 reports per cycle
        run.sim.run(until=run.config.duration)
        unit = run.gps_units[0]
        assert unit.reports_superseded > 0
        # Supersession never endangers the deadline.
        assert run.stats.gps_deadline_misses == 0

    def test_gps_units_have_no_data_queue_activity(self):
        run = run_cell_detailed(build().config)
        for unit in run.gps_units:
            assert not hasattr(unit, "queue") or not unit.queue
