"""Focused tests of base-station internals via a live (small) cell."""

import pytest

from repro.core.cell import build_cell, run_cell_detailed
from repro.core.config import CellConfig
from repro.core.fields import AckEntry
from repro.core.packets import ForwardPacket, SERVICE_DATA, SERVICE_GPS
from repro.phy import timing


def build(**overrides):
    defaults = dict(num_data_users=4, num_gps_users=2, load_index=0.6,
                    cycles=60, warmup_cycles=10, seed=17)
    defaults.update(overrides)
    return build_cell(CellConfig(**defaults))


class TestControlFieldConstruction:
    def test_cf1_and_cf2_schedules_identical(self):
        """Problem 3 (Section 3.4): only the ACK content may differ."""
        run = build()
        captured = {}
        original = run.base_station._make_cf

        def capture(record, which):
            cf = original(record, which)
            captured.setdefault(record.cycle, {})[which] = cf
            return cf

        run.base_station._make_cf = capture
        run.sim.run(until=run.config.duration)
        checked = 0
        for _cycle, pair in captured.items():
            if 1 not in pair or 2 not in pair:
                continue
            cf1, cf2 = pair[1], pair[2]
            assert cf1.gps_schedule == cf2.gps_schedule
            assert cf1.reverse_schedule == cf2.reverse_schedule
            checked += 1
        assert checked > 30

    def test_cf2_fills_in_last_slot_ack(self):
        """The last reverse data slot's ACK appears only in CF2."""
        run = build(load_index=1.1, cycles=50)
        differences = []
        original = run.base_station._make_cf

        def capture(record, which):
            cf = original(record, which)
            previous = run.base_station.record_for(record.cycle - 1)
            if previous is not None:
                last = previous.last_data_slot
                if which == 1:
                    capture.cf1_last = cf.reverse_acks[last]
                else:
                    differences.append(
                        (capture.cf1_last, cf.reverse_acks[last]))
            return cf

        capture.cf1_last = None
        run.base_station._make_cf = capture
        run.sim.run(until=run.config.duration)
        # At saturation the last slot is regularly used, so CF2 must
        # regularly carry an ACK where CF1 had none.
        upgrades = [pair for pair in differences
                    if pair[0] is not None and pair[0].is_empty
                    and not pair[1].is_empty]
        assert len(upgrades) > 10

    def test_forward_slot0_never_given_to_cf2_listener(self):
        run = build(load_index=1.1, forward_load_index=0.5, cycles=60)
        violations = []
        original = run.base_station._build_cycle

        def check(t0):
            record = original(t0)
            if record.cf2_listener is not None \
                    and record.forward_assignment[0] == record.cf2_listener:
                violations.append(record.cycle)
            return record

        run.base_station._build_cycle = check
        run.sim.run(until=run.config.duration)
        assert violations == []


class TestSignOff:
    def test_sign_off_releases_everything(self):
        run = run_cell_detailed(build().config)
        bs = run.base_station
        subscriber = run.data_users[0]
        uid = subscriber.uid
        bs.forward_queues[uid] = __import__("collections").deque(
            [ForwardPacket(uid=uid, seq=0)])
        bs.demands[uid] = 3
        bs.sign_off(uid)
        assert bs.registration.lookup_uid(uid) is None
        assert uid not in bs.demands
        assert uid not in bs.forward_queues

    def test_sign_off_gps_frees_slot(self):
        run = run_cell_detailed(build().config)
        bs = run.base_station
        unit = run.gps_units[0]
        assert bs.gps_mgr.slot_of(unit.uid) is not None
        bs.sign_off(unit.uid)
        assert bs.gps_mgr.slot_of(unit.uid) is None

    def test_sign_off_unknown_uid_is_noop(self):
        run = run_cell_detailed(build().config)
        run.base_station.sign_off(61)  # never assigned


class TestHousekeeping:
    def test_records_pruned(self):
        run = run_cell_detailed(build(cycles=80).config)
        bs = run.base_station
        # Only a handful of recent cycles are retained.
        assert len(bs._records) <= 5
        assert all(cycle >= bs.cycle - 4 for cycle in bs._records)
        assert all(key[0] >= bs.cycle - 4
                   for key in bs._slot_results)

    def test_seq_dedup_window_bounded(self):
        run = run_cell_detailed(build(load_index=1.1, cycles=120).config)
        for seen in run.base_station._recent_seqs.values():
            assert len(seen) <= 256


class TestCapacityLimits:
    def test_full_uid_space(self):
        """Paper scale: the cell supports 8 GPS + up to 64 data users
        (we cap at 55+8=63 assignable IDs; 63 is the wire sentinel).
        Subscribers power on over time -- 63 *simultaneous* registrants
        would deadlock pure persistence (see the p-persistence test)."""
        run = run_cell_detailed(CellConfig(
            num_data_users=55, num_gps_users=8, load_index=0.5,
            registration_mode="poisson", registration_rate=0.5,
            cycles=160, warmup_cycles=80, seed=19))
        stats = run.stats
        assert stats.registrations_completed == 63
        assert stats.radio_violations == 0
        assert stats.gps_deadline_misses == 0
        uids = {u.uid for u in run.data_users + run.gps_units}
        assert len(uids) == 63
        assert max(uids) <= 62

    def test_p_persistence_resolves_large_storms(self):
        """63 simultaneous registrants over ~7 contention slots deadlock
        under the paper's pure persistence; p-persistence at
        p ~ slots/registrants converges."""
        pure = run_cell_detailed(CellConfig(
            num_data_users=55, num_gps_users=8, load_index=0.0,
            cycles=80, warmup_cycles=40, seed=19))
        adaptive = run_cell_detailed(CellConfig(
            num_data_users=55, num_gps_users=8, load_index=0.0,
            registration_persistence=0.12,
            cycles=80, warmup_cycles=40, seed=19))
        assert pure.stats.registrations_completed < 10
        assert adaptive.stats.registrations_completed > 50

    def test_ninth_gps_user_rejected(self):
        run = build(num_gps_users=8)
        bs = run.base_station
        run.sim.run(until=run.config.duration)
        # All 8 slots taken; a 9th approval must fail.
        record = bs.registration.approve(0x3FFF, SERVICE_GPS,
                                         run.sim.now)
        assert record is None

    def test_gps_slots_match_registrations(self):
        run = run_cell_detailed(build(num_gps_users=5).config)
        bs = run.base_station
        assert bs.gps_mgr.active_count == 5
        assert bs.registration.active_gps == 5
        bs.gps_mgr.check_invariants()


class TestDemandBookkeeping:
    def test_demands_drain_to_zero_at_light_load(self):
        run = run_cell_detailed(build(load_index=0.2, cycles=100).config)
        # After the run, queues have drained and demand follows.
        leftovers = {uid: demand for uid, demand
                     in run.base_station.demands.items() if demand > 2}
        assert not leftovers

    def test_grants_never_exceed_schedulable_slots(self):
        run = build(load_index=1.1)
        overgrants = []
        original = run.base_station._build_cycle

        def check(t0):
            record = original(t0)
            granted = sum(record.grants.values())
            schedulable = record.layout.data_slots \
                - len([i for i in record.contention_slots
                       if i < run.base_station.contention.current])
            if granted > record.layout.data_slots:
                overgrants.append(record.cycle)
            return record

        run.base_station._build_cycle = check
        run.sim.run(until=run.config.duration)
        assert overgrants == []
