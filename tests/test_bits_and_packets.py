"""Unit and property tests for bit packing and MAC packet formats."""

import pytest
from hypothesis import given, strategies as st

from repro.core.bits import BitReader, BitWriter
from repro.core.packets import (
    DataPacket,
    ForwardPacket,
    GPSPacket,
    MAX_ASSIGNABLE_UID,
    PAYLOAD_BYTES,
    RegistrationPacket,
    ReservationPacket,
    SERVICE_DATA,
    SERVICE_GPS,
    UNASSIGNED,
    decode_uplink,
)
from repro.phy import timing


class TestBitWriterReader:
    def test_simple_roundtrip(self):
        writer = BitWriter()
        writer.write(5, 3).write(1, 1).write(200, 8)
        reader = BitReader(writer.getvalue())
        assert reader.read(3) == 5
        assert reader.read(1) == 1
        assert reader.read(8) == 200

    @given(st.lists(st.tuples(st.integers(1, 24), st.integers(0, 2**24 - 1)),
                    min_size=1, max_size=20))
    def test_property_roundtrip(self, fields):
        writer = BitWriter()
        expected = []
        for nbits, raw in fields:
            value = raw & ((1 << nbits) - 1)
            writer.write(value, nbits)
            expected.append((nbits, value))
        reader = BitReader(writer.getvalue())
        for nbits, value in expected:
            assert reader.read(nbits) == value

    def test_value_too_large_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write(8, 3)
        with pytest.raises(ValueError):
            BitWriter().write(-1, 3)

    def test_padding(self):
        data = BitWriter().write(1, 1).getvalue(pad_to_bytes=10)
        assert len(data) == 10
        assert data[0] == 0x80

    def test_pad_too_small_rejected(self):
        writer = BitWriter().write_bytes(bytes(5))
        with pytest.raises(ValueError):
            writer.getvalue(pad_to_bytes=2)

    def test_bytes_roundtrip(self):
        payload = bytes(range(10))
        writer = BitWriter().write(3, 4).write_bytes(payload)
        reader = BitReader(writer.getvalue())
        assert reader.read(4) == 3
        assert reader.read_bytes(10) == payload

    def test_bool_roundtrip(self):
        writer = BitWriter().write_bool(True).write_bool(False)
        reader = BitReader(writer.getvalue())
        assert reader.read_bool() is True
        assert reader.read_bool() is False

    def test_read_past_end(self):
        reader = BitReader(b"\x00")
        reader.read(8)
        with pytest.raises(ValueError):
            reader.read(1)

    def test_bits_remaining(self):
        reader = BitReader(b"\x00\x00")
        assert reader.bits_remaining == 16
        reader.read(5)
        assert reader.bits_remaining == 11


class TestDataPacket:
    def test_roundtrip(self):
        packet = DataPacket(uid=13, seq=1023, payload_len=20,
                            piggyback=7, more=True,
                            payload=bytes(range(20)))
        data = packet.encode()
        assert len(data) == timing.RS_INFO_BYTES
        decoded = DataPacket.decode(data)
        assert decoded.uid == 13
        assert decoded.seq == 1023
        assert decoded.payload_len == 20
        assert decoded.piggyback == 7
        assert decoded.more is True
        assert decoded.payload == bytes(range(20))

    @given(st.integers(0, MAX_ASSIGNABLE_UID), st.integers(0, 4095),
           st.integers(0, PAYLOAD_BYTES), st.integers(0, 15),
           st.booleans(), st.binary(min_size=0, max_size=PAYLOAD_BYTES))
    def test_property_roundtrip(self, uid, seq, length, piggyback, more,
                                payload):
        payload = payload[:length].ljust(length, b"\0")
        packet = DataPacket(uid=uid, seq=seq, payload_len=length,
                            piggyback=piggyback, more=more,
                            payload=payload)
        decoded = DataPacket.decode(packet.encode())
        assert (decoded.uid, decoded.seq, decoded.payload_len,
                decoded.piggyback, decoded.more) \
            == (uid, seq, length, piggyback, more)
        assert decoded.payload == payload

    def test_fits_one_rs_codeword(self):
        """Header + payload = 384 info bits exactly (Table 1)."""
        assert 32 + PAYLOAD_BYTES * 8 == timing.RS_INFO_BITS

    def test_validation(self):
        with pytest.raises(ValueError):
            DataPacket(uid=63, seq=0, payload_len=0)  # 63 is reserved
        with pytest.raises(ValueError):
            DataPacket(uid=0, seq=0, payload_len=PAYLOAD_BYTES + 1)
        with pytest.raises(ValueError):
            DataPacket(uid=0, seq=5000, payload_len=0)
        with pytest.raises(ValueError):
            DataPacket(uid=0, seq=0, payload_len=0, piggyback=16)

    def test_decode_rejects_wrong_type(self):
        reservation = ReservationPacket(uid=1, requested=3)
        with pytest.raises(ValueError):
            DataPacket.decode(reservation.encode())


class TestControlPackets:
    def test_reservation_roundtrip(self):
        packet = ReservationPacket(uid=42, requested=17)
        decoded = ReservationPacket.decode(packet.encode())
        assert decoded.uid == 42
        assert decoded.requested == 17

    def test_registration_roundtrip(self):
        packet = RegistrationPacket(ein=0xBEEF, service=SERVICE_GPS)
        decoded = RegistrationPacket.decode(packet.encode())
        assert decoded.ein == 0xBEEF
        assert decoded.service == SERVICE_GPS

    def test_registration_rejects_reserved_ein(self):
        with pytest.raises(ValueError):
            RegistrationPacket(ein=0xFFFF)

    def test_registration_rejects_unknown_service(self):
        with pytest.raises(ValueError):
            RegistrationPacket(ein=1, service=3)

    def test_reservation_range_checked(self):
        with pytest.raises(ValueError):
            ReservationPacket(uid=1, requested=64)

    def test_decode_uplink_dispatches(self):
        assert isinstance(
            decode_uplink(DataPacket(uid=1, seq=0, payload_len=0).encode()),
            DataPacket)
        assert isinstance(
            decode_uplink(ReservationPacket(uid=1, requested=2).encode()),
            ReservationPacket)
        assert isinstance(
            decode_uplink(RegistrationPacket(ein=9).encode()),
            RegistrationPacket)


class TestGPSPacket:
    def test_is_72_bits(self):
        packet = GPSPacket(uid=5, seq=100, latitude=123456,
                           longitude=654321)
        assert len(packet.encode()) == 9  # 72 bits (Section 2.1)

    @given(st.integers(0, MAX_ASSIGNABLE_UID), st.integers(0, 1023),
           st.integers(0, 2**28 - 1), st.integers(0, 2**28 - 1))
    def test_roundtrip(self, uid, seq, lat, lon):
        packet = GPSPacket(uid=uid, seq=seq, latitude=lat, longitude=lon)
        decoded = GPSPacket.decode(packet.encode())
        assert (decoded.uid, decoded.seq, decoded.latitude,
                decoded.longitude) == (uid, seq, lat, lon)

    def test_validation(self):
        with pytest.raises(ValueError):
            GPSPacket(uid=0, seq=1024)
        with pytest.raises(ValueError):
            GPSPacket(uid=0, seq=0, latitude=1 << 28)


class TestForwardPacket:
    def test_conversion_to_data_packet(self):
        forward = ForwardPacket(uid=3, seq=5000, payload_len=10,
                                message_id=7, more=True, created_at=1.5)
        packet = forward.to_data_packet()
        assert packet.uid == 3
        assert packet.seq == 5000 % 4096
        assert packet.payload_len == 10
        assert packet.more is True
        assert packet.created_at == 1.5

    def test_sentinel_constants(self):
        assert UNASSIGNED == 63
        assert MAX_ASSIGNABLE_UID == 62
        assert SERVICE_DATA != SERVICE_GPS
