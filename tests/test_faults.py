"""Fault injection, liveness leases, eviction recovery, invariants.

The acceptance scenario from the robustness milestone: crash and restart
three data users and two GPS units mid-run at rho = 0.7 with a 6-cycle
liveness lease, and verify the cell heals completely -- every restarted
subscriber re-registers, no UID or GPS slot leaks, the continuous
invariant monitor stays silent, and live GPS users never miss the
4-second deadline.  Plus unit coverage for the fault schedule parser,
the injector's fade/storm mechanics, the lease sweep, and the
registration module's incremental counters.
"""

import random

import pytest

from repro import CellConfig, run_cell_detailed
from repro.core.base_station import SlotResult
from repro.core.cell import build_cell
from repro.core.frames import KIND_REGISTRATION, SLOT_DATA, UplinkFrame
from repro.core.packets import (
    RegistrationPacket,
    SERVICE_DATA,
    SERVICE_GPS,
)
from repro.core.registration import RegistrationModule
from repro.core.subscriber import ACTIVE, CRASHED
from repro.engine import RunSpec, cell_point, execute
from repro.faults import FaultSpec, cf_storm, crash, fade, parse_faults
from repro.faults import restart as restart_spec
from repro.phy import timing
from repro.phy.errors import PerfectChannelModel
from repro.traffic.messages import Message


def chaos_config(**overrides):
    """The acceptance scenario: 3 data + 2 GPS crash/restart pairs.

    GPS downtimes exceed the lease, so both units are lease-evicted and
    must come back through the full eviction/re-registration path.
    """
    faults = (
        crash("data-0", 40), restart_spec("data-0", 52),
        crash("data-1", 44), restart_spec("data-1", 56),
        crash("data-2", 48), restart_spec("data-2", 60),
        crash("gps-0", 40), restart_spec("gps-0", 54),
        crash("gps-1", 45), restart_spec("gps-1", 59),
    )
    defaults = dict(num_data_users=9, num_gps_users=4, load_index=0.7,
                    cycles=120, warmup_cycles=20, seed=7,
                    faults=faults, liveness_lease_cycles=6,
                    check_invariants=True)
    defaults.update(overrides)
    return CellConfig(**defaults)


def _registered(run, subscriber) -> bool:
    record = run.base_station.registration.lookup_ein(subscriber.ein)
    return (subscriber.alive and subscriber.state == ACTIVE
            and record is not None and record.uid == subscriber.uid)


class TestChurnAcceptance:
    """The milestone's acceptance scenario, asserted end to end."""

    @pytest.fixture(scope="class")
    def healed(self):
        config = chaos_config()
        run = build_cell(config)
        run.sim.run(until=config.duration)
        # The protocol guarantees convergence, not a deadline: an
        # idle-evicted data user only re-registers when it next has
        # traffic, so give stragglers a bounded grace period and keep
        # their applications talking (the workload stops at
        # ``config.duration``; a silent subscriber is *supposed* to stay
        # deregistered until it has something to say).
        # The grace period must cover eviction detection through the
        # reservation path: up to ``eviction_detect_attempts`` failed
        # attempts with exponential backoff between them (~60 cycles
        # worst case), plus the re-registration handshake.
        targets = run.data_users[:3] + run.gps_units[:2]
        wakeup = 900000
        for _ in range(150):
            if all(_registered(run, sub) for sub in targets):
                break
            for sub in run.data_users[:3]:
                if not _registered(run, sub) and not sub.queue:
                    wakeup += 1
                    sub.submit_message(Message(
                        message_id=wakeup, size_bytes=40,
                        created_at=run.sim.now))
            run.sim.run(until=run.sim.now + timing.CYCLE_LENGTH)
        return run

    def test_every_crashed_subscriber_recovered(self, healed):
        targets = healed.data_users[:3] + healed.gps_units[:2]
        for sub in targets:
            assert sub.crashes == 1
            assert _registered(healed, sub), f"{sub.name} not healed"

    def test_recovery_latency_recorded(self, healed):
        # All five crashed subscribers re-registered at least once (the
        # idle-eviction churn of other users may add more samples).
        assert healed.stats.recovery_latency_cycles.count >= 5
        assert healed.stats.recovery_latency_cycles.max > 0

    def test_leases_fired_and_detected(self, healed):
        # Every crashed subscriber was down longer than the lease.
        assert healed.stats.lease_evictions >= 5
        assert healed.stats.evictions_detected >= 1

    def test_no_uid_or_slot_leaks(self, healed):
        registry = healed.base_station.registration
        registry.check_invariants()
        healed.base_station.gps_mgr.check_invariants()
        gps_uids = {record.uid for record in registry.registrants()
                    if record.service == SERVICE_GPS}
        owners = {uid for uid
                  in healed.base_station.gps_mgr.schedule()
                  if uid is not None}
        assert owners == gps_uids
        assert registry.active_gps == len(gps_uids)

    def test_invariants_never_violated(self, healed):
        assert healed.monitor is not None
        assert healed.monitor.checks_run > 100
        assert healed.monitor.violations == []
        assert healed.stats.invariant_violations == 0
        assert healed.monitor.check_now() == []

    def test_gps_deadline_held_for_live_users(self, healed):
        assert healed.stats.gps_deadline_misses == 0

    def test_radio_timeline_stayed_legal(self, healed):
        for sub in healed.data_users + healed.gps_units:
            assert sub.radio.violations == []

    def test_faults_actually_fired(self, healed):
        assert healed.injector is not None
        assert healed.stats.faults_injected == 10
        kinds = [spec.kind for _, spec, _ in healed.injector.fired]
        assert kinds.count("crash") == 5
        assert kinds.count("restart") == 5


class TestDeterminism:
    def test_bit_identical_across_jobs(self):
        points = tuple(
            cell_point(chaos_config(seed=seed, cycles=60,
                                    warmup_cycles=15,
                                    faults=chaos_config().faults[:4]),
                       seed=seed)
            for seed in (1, 2, 3, 4))
        spec = RunSpec(name="faults-determinism", points=points)
        serial = execute(spec, jobs=1, cache=False).values
        parallel = execute(spec, jobs=4, cache=False).values
        assert serial == parallel


class TestFaultSchedule:
    def test_parse_round_trip(self):
        specs = parse_faults(
            "crash:data-0@40;restart:data-0@52,fade:gps-*@60+4*0.9")
        assert specs == (
            crash("data-0", 40), restart_spec("data-0", 52),
            fade("gps-*", 60, duration_cycles=4, loss=0.9))

    def test_parse_cf_storm(self):
        (spec,) = parse_faults("cf_storm:*@70+2")
        assert spec == cf_storm(70, duration_cycles=2)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_faults("crash:data-0")
        with pytest.raises(ValueError):
            parse_faults("meteor:data-0@4")

    def test_parse_error_names_token_position_and_grammar(self):
        from repro.faults.schedule import GRAMMAR, FaultParseError

        with pytest.raises(FaultParseError) as excinfo:
            parse_faults("crash:data-0@40;meteor:data-0@4")
        error = excinfo.value
        assert error.position == 2          # 1-based entry position
        assert error.entry == "meteor:data-0@4"
        assert error.token == "meteor"
        assert "meteor" in str(error)
        assert GRAMMAR in str(error)

    def test_parse_error_flags_bad_numbers(self):
        from repro.faults.schedule import FaultParseError

        with pytest.raises(FaultParseError) as excinfo:
            parse_faults("fade:gps-*@60+four")
        assert excinfo.value.token == "four"
        with pytest.raises(FaultParseError) as excinfo:
            parse_faults("fade:gps-*@60*1.5")
        assert excinfo.value.token == "1.5"
        with pytest.raises(FaultParseError) as excinfo:
            parse_faults("fade:gps-*@60/diagonal")
        assert excinfo.value.token == "diagonal"

    def test_format_round_trips_every_generated_schedule(self):
        from repro.faults.schedule import format_faults

        specs = (crash("data-0", 40), restart_spec("data-0", 52),
                 fade("gps-*", 60, duration_cycles=4, loss=0.9,
                      channel="forward"),
                 cf_storm(70, duration_cycles=2, target="data-*"))
        assert parse_faults(format_faults(specs)) == specs

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="crash", at_cycle=-1)
        with pytest.raises(ValueError):
            FaultSpec(kind="fade", at_cycle=1, loss=1.5)
        with pytest.raises(ValueError):
            FaultSpec(kind="fade", at_cycle=1, channel="sideways")

    def test_specs_are_hashable_and_config_accepts_them(self):
        spec = crash("data-0", 10)
        assert hash(spec) == hash(crash("data-0", 10))
        config = CellConfig(faults=[spec], cycles=40, warmup_cycles=8)
        assert config.faults == (spec,)

    def test_config_rejects_non_specs(self):
        with pytest.raises(ValueError):
            CellConfig(faults=("crash:data-0@4",))

    def test_matching(self):
        assert fade("gps-*", 1).matches("gps-3")
        assert not fade("gps-*", 1).matches("data-3")
        assert cf_storm(1).matches("data-0")


class TestInjectorMechanics:
    def test_fade_swaps_and_restores_error_model(self):
        config = CellConfig(num_data_users=2, num_gps_users=1,
                            load_index=0.5, cycles=40, warmup_cycles=8,
                            seed=3,
                            faults=(fade("data-0", 12,
                                         duration_cycles=2, loss=1.0),))
        run = build_cell(config)
        victim = run.data_users[0]
        original = victim.forward_link.error_model
        run.sim.run(until=13.5 * timing.CYCLE_LENGTH)
        assert victim.forward_link.error_model is not original
        assert victim.forward_link.error_model.loss_probability == 1.0
        run.sim.run(until=config.duration)
        assert victim.forward_link.error_model is original
        assert victim.reverse_link.error_model is original \
            or isinstance(victim.reverse_link.error_model,
                          PerfectChannelModel)
        assert run.injector._fade_saved == {}
        # A total 2-cycle fade on both links must cost CF receptions.
        assert run.stats.cf_losses >= 2

    def test_overlapping_fades_restore_once(self):
        config = CellConfig(num_data_users=1, num_gps_users=0,
                            load_index=0.2, cycles=40, warmup_cycles=8,
                            seed=3,
                            faults=(fade("data-0", 10, 4, loss=1.0),
                                    fade("data-0", 12, 4, loss=1.0)))
        run = build_cell(config)
        original = run.data_users[0].forward_link.error_model
        run.sim.run(until=15 * timing.CYCLE_LENGTH)
        # Still inside the second window: model swapped.
        assert run.data_users[0].forward_link.error_model is not original
        run.sim.run(until=config.duration)
        assert run.data_users[0].forward_link.error_model is original

    def test_cf_storm_destroys_control_fields(self):
        config = CellConfig(num_data_users=3, num_gps_users=1,
                            load_index=0.5, cycles=40, warmup_cycles=8,
                            seed=3,
                            faults=(cf_storm(15, duration_cycles=2),),
                            check_invariants=True)
        run = run_cell_detailed(config)
        # 4 subscribers x 2 cycles x (CF1, and CF2 for the last-slot
        # user) -- at minimum each subscriber loses CF1 twice.
        assert run.stats.cf_storm_drops >= 8
        assert run.stats.invariant_violations == 0

    def test_crash_without_restart_stays_down(self):
        config = CellConfig(num_data_users=2, num_gps_users=2,
                            load_index=0.4, cycles=60, warmup_cycles=10,
                            seed=5, faults=(crash("gps-1", 20),),
                            liveness_lease_cycles=5,
                            check_invariants=True)
        run = run_cell_detailed(config)
        dead = run.gps_units[1]
        assert not dead.alive
        assert dead.state == CRASHED
        registry = run.base_station.registration
        # Lease expired: uid freed, GPS slot reclaimed via R3.
        assert registry.lookup_ein(dead.ein) is None
        assert registry.active_gps == 1
        assert run.base_station.gps_mgr.active_count == 1
        assert run.base_station.gps_mgr.occupied_slots() == [0]
        assert run.stats.lease_evictions >= 1
        assert run.stats.invariant_violations == 0


class TestLeaseAndReclaim:
    def test_release_reclaim_end_to_end(self):
        """The satellite scenario: a GPS user leaves, its slot returns
        to the pool (format 2 kicks back in via dynamic adjustment),
        and when it comes back it is re-admitted (format 1 again)."""
        config = CellConfig(num_data_users=4, num_gps_users=4,
                            load_index=0.4, cycles=100,
                            warmup_cycles=15, seed=9,
                            faults=(crash("gps-3", 30),
                                    restart_spec("gps-3", 60)),
                            liveness_lease_cycles=5,
                            check_invariants=True)
        run = build_cell(config)
        observed = {}

        def snapshot(label):
            manager = run.base_station.gps_mgr
            observed[label] = (manager.active_count,
                               manager.format_id,
                               manager.layout().data_slots)

        run.sim.call_at(25 * timing.CYCLE_LENGTH, lambda: snapshot("before"))
        run.sim.call_at(50 * timing.CYCLE_LENGTH, lambda: snapshot("down"))
        run.sim.call_at(90 * timing.CYCLE_LENGTH, lambda: snapshot("after"))
        run.sim.run(until=config.duration)

        # 4 GPS users -> format 1 (8 data slots); after the lease evicts
        # the crashed unit, 3 remain -> format 2 (9 data slots); once it
        # re-registers, format 1 returns.
        assert observed["before"] == (4, 1, timing.FORMAT1_DATA_SLOTS)
        assert observed["down"] == (3, 2, timing.FORMAT2_DATA_SLOTS)
        assert observed["after"] == (4, 1, timing.FORMAT1_DATA_SLOTS)

        returned = run.gps_units[3]
        assert _registered(run, returned)
        assert run.base_station.gps_mgr.slot_of(returned.uid) is not None
        assert run.base_station.gps_mgr.occupied_slots() == [0, 1, 2, 3]
        run.base_station.registration.check_invariants()
        assert run.stats.invariant_violations == 0
        assert run.stats.recovery_latency_cycles.count >= 1

    def test_idle_data_users_are_lease_evicted(self):
        """With zero traffic every data user goes silent and the lease
        reclaims all their UIDs; the zombies are legal (they re-register
        on their next message, which never comes here)."""
        config = CellConfig(num_data_users=5, num_gps_users=1,
                            load_index=0.0, cycles=60, warmup_cycles=10,
                            seed=2, liveness_lease_cycles=4,
                            check_invariants=True)
        run = run_cell_detailed(config)
        registry = run.base_station.registration
        assert registry.active_data == 0
        assert run.stats.lease_evictions >= 5
        # The GPS unit transmits every cycle, so its lease never expires.
        assert registry.active_gps == 1
        assert run.stats.invariant_violations == 0
        assert run.base_station._last_heard.keys() \
            == {run.gps_units[0].uid}

    def test_lease_disabled_preserves_legacy_behaviour(self):
        base = CellConfig(num_data_users=4, num_gps_users=2,
                          load_index=0.0, cycles=60, warmup_cycles=10,
                          seed=2)
        run = run_cell_detailed(base)
        assert run.base_station.registration.active_data == 4
        assert run.stats.lease_evictions == 0


class TestEvictionDetection:
    def test_gps_unit_detects_signoff_and_reregisters(self):
        """A GPS unit deregistered behind its back notices the missing
        schedule entry within ``eviction_detect_cycles`` heard CFs and
        re-registers through normal contention."""
        config = CellConfig(num_data_users=2, num_gps_users=2,
                            load_index=0.3, cycles=80, warmup_cycles=10,
                            seed=4, liveness_lease_cycles=50,
                            check_invariants=True)
        run = build_cell(config)
        station = run.base_station
        victim = run.gps_units[0]

        def evict():
            assert victim.uid is not None
            station.sign_off(victim.uid)

        # Just before the cycle-30 build: the protocol only deregisters
        # at cycle boundaries (the lease sweep runs in ``_build_cycle``),
        # and the invariant monitor assumes that sequencing.
        run.sim.call_at(30 * timing.CYCLE_LENGTH - 0.001, evict)
        run.sim.run(until=config.duration)
        assert victim.crashes == 0
        assert _registered(run, victim)
        assert run.stats.evictions_detected >= 1
        assert run.stats.recovery_latency_cycles.count >= 1
        assert run.stats.invariant_violations == 0


class TestRegistrationCounters:
    def test_incremental_counters_match_scan(self):
        module = RegistrationModule()
        rng = random.Random(13)
        live = []
        for _ in range(300):
            if live and rng.random() < 0.4:
                module.release(live.pop(rng.randrange(len(live))))
            else:
                service = rng.choice((SERVICE_DATA, SERVICE_GPS))
                record = module.approve(rng.randrange(1 << 16),
                                        service, 0.0)
                if record is not None:
                    live.append(record.uid)
            assert module.active_data == module.scan_active(SERVICE_DATA)
            assert module.active_gps == module.scan_active(SERVICE_GPS)
            module.check_invariants()

    def test_check_invariants_catches_drift(self):
        module = RegistrationModule()
        module.approve(1, SERVICE_DATA, 0.0)
        module._active_counts[SERVICE_DATA] += 1
        with pytest.raises(AssertionError):
            module.check_invariants()

    def test_registrants_snapshot(self):
        module = RegistrationModule()
        first = module.approve(1, SERVICE_DATA, 0.0)
        second = module.approve(2, SERVICE_GPS, 0.0)
        snapshot = module.registrants()
        assert first in snapshot and second in snapshot


def _registration_frame(ein, service):
    return UplinkFrame(kind=KIND_REGISTRATION, cycle=0,
                       slot_kind=SLOT_DATA, slot_index=0,
                       packet=RegistrationPacket(ein=ein, service=service),
                       uid=None, contention=True,
                       first_attempt_time=0.0, first_attempt_cycle=0)


class TestRejectionCounters:
    def _station(self):
        config = CellConfig(num_data_users=0, num_gps_users=0,
                            load_index=0.0, cycles=10, warmup_cycles=2)
        return build_cell(config).base_station

    def test_capacity_rejections_counted(self):
        station = self._station()
        for ein in range(9):
            station._handle_registration(
                _registration_frame(ein, SERVICE_GPS), SlotResult())
        assert station.registration.active_gps == 8
        assert station.stats.registrations_rejected_capacity == 1

    def test_gps_slot_rejections_counted(self):
        station = self._station()
        # Exhaust the slot pool behind the registry's back, so admission
        # passes the capacity check but fails slot assignment.
        for fake_uid in range(50, 58):
            station.gps_mgr.admit(fake_uid)
        station._handle_registration(
            _registration_frame(1, SERVICE_GPS), SlotResult())
        assert station.stats.registrations_rejected_gps_slot == 1
        # The approved record was rolled back: no half-registered user.
        assert station.registration.lookup_ein(1) is None


class TestChaosExperiment:
    def test_fault_plan_is_deterministic(self):
        from repro.experiments import chaos
        first = chaos.fault_plan(1.0, 1.0, 3, 140, 25)
        second = chaos.fault_plan(1.0, 1.0, 3, 140, 25)
        assert first == second
        assert any(spec.kind == "crash" for spec in first)

    def test_quick_grid_has_zero_invariant_violations(self):
        from repro.experiments import chaos
        result = chaos.run(quick=True, seeds=(1,), jobs=1, cache=False)
        column = result.headers.index("inv_violations")
        assert all(row[column] == 0 for row in result.rows)
        recoveries = result.headers.index("recoveries")
        assert all(row[recoveries] > 0 for row in result.rows)
