"""Tests for the MCNS/DOCSIS cable-modem MAC model."""

import pytest

from repro.protocols import MCNS


class TestMCNS:
    def test_carries_traffic(self):
        protocol = MCNS(num_modems=10, arrival_probability=0.1, seed=1)
        stats = protocol.run(2000)
        assert stats.data_packets_delivered > 500
        assert stats.throughput() > 0.1

    def test_piggyback_dominates_under_load(self):
        """The same phenomenon as OSU-MAC's Fig. 9: under load, requests
        ride piggyback on granted transmissions instead of contending."""
        light = MCNS(num_modems=10, arrival_probability=0.02, seed=2)
        light.run(3000)
        heavy = MCNS(num_modems=10, arrival_probability=0.5, seed=2)
        heavy.run(3000)
        assert heavy.piggyback_fraction() > 2 * max(
            light.piggyback_fraction(), 0.05)

    def test_piggyback_disabled_costs_throughput(self):
        kwargs = dict(num_modems=15, arrival_probability=0.5,
                      request_region=4, seed=3)
        with_piggyback = MCNS(piggyback=True, **kwargs).run(3000)
        without = MCNS(piggyback=False, **kwargs).run(3000)
        # Without piggyback every packet pays the contention toll, which
        # bottlenecks at the small request region.
        assert with_piggyback.data_packets_delivered \
            > 1.2 * without.data_packets_delivered

    def test_backoff_window_resets_on_success(self):
        protocol = MCNS(num_modems=30, arrival_probability=0.4, seed=4)
        protocol.run(500)
        # Modems that got through have their windows reset.
        assert any(modem.backoff_window == 1
                   for modem in protocol.modems)

    def test_collision_backoff_grows_and_caps(self):
        import random
        protocol = MCNS(num_modems=2, arrival_probability=0.0, seed=5)
        modem = protocol.modems[0]
        rng = random.Random(1)
        for _ in range(10):
            modem.on_collision(rng)
        assert modem.backoff_window == 64  # DOCSIS-style cap

    def test_counters_consistent(self):
        protocol = MCNS(num_modems=10, arrival_probability=0.3, seed=6)
        stats = protocol.run(1000)
        assert stats.data_packets_delivered \
            <= stats.data_packets_generated
        assert stats.slots_carrying_payload <= stats.slots_total

    def test_validation(self):
        with pytest.raises(ValueError):
            MCNS(num_modems=0)
        with pytest.raises(ValueError):
            MCNS(num_modems=5, minislots_per_map=10, request_region=10)

    def test_delay_grows_with_load(self):
        light = MCNS(num_modems=10, arrival_probability=0.05,
                     seed=7).run(3000)
        heavy = MCNS(num_modems=10, arrival_probability=0.35,
                     seed=7).run(3000)
        assert heavy.mean_data_delay() > light.mean_data_delay()
