"""Tests that the derived PHY timing matches Tables 1 and 2 of the paper."""

import math

import pytest

from repro.phy import timing


def approx(value):
    return pytest.approx(value, abs=1e-9)


class TestTable1:
    """Every derived number printed in Table 1."""

    def test_symbol_rates(self):
        assert timing.FORWARD_SYMBOL_RATE == 3200
        assert timing.REVERSE_SYMBOL_RATE == 2400

    def test_ps_frame(self):
        assert timing.PS_FRAME_SYMBOLS == 150
        assert timing.PS_FRAME_INFO_SYMBOLS == 128
        assert timing.PS_FRAME_PILOTS == 22  # 15 periodic + 7 leading
        assert timing.PS_FRAME_EFFICIENCY == approx(128 / 150)

    def test_rs_codeword_bits(self):
        assert timing.RS_INFO_BITS == 384
        assert timing.RS_CODED_BITS == 512

    def test_regular_packet_spans_two_ps_frames(self):
        # 512 coded bits -> 256 symbols -> 2 PS frames -> 300 symbols
        assert timing.RS_CODEWORD_SYMBOLS == 300
        assert timing.REGULAR_PACKET_SYMBOLS == 300

    def test_regular_packet_times(self):
        assert timing.REGULAR_PACKET_TIME_FORWARD == approx(300 / 3200)
        assert timing.REGULAR_PACKET_TIME_REVERSE == approx(0.125)

    def test_cycle_preamble(self):
        assert timing.FORWARD_PREAMBLE_TOTAL_SYMBOLS == 450
        assert timing.CYCLE_PREAMBLE_TIME == approx(0.140625)

    def test_gps_packet_parameters(self):
        assert timing.GPS_PACKET_INFO_BITS == 72
        assert timing.GPS_PACKET_SYMBOLS == 128
        assert timing.GPS_PREAMBLE_SYMBOLS == 64
        assert timing.GPS_SLOT_SYMBOLS == 210
        assert timing.GPS_SLOT_TIME == approx(0.0875)

    def test_regular_packet_framing(self):
        assert timing.REGULAR_PREAMBLE_SYMBOLS == 600
        assert timing.REGULAR_POSTAMBLE_SYMBOLS == 51
        assert timing.GUARD_SYMBOLS == 18
        assert timing.GUARD_TIME == approx(0.0075)
        assert timing.REGULAR_SLOT_SYMBOLS == 969
        assert timing.DATA_SLOT_TIME == approx(0.40375)

    def test_preamble_times_from_table(self):
        assert 600 / 2400 == approx(0.25)  # regular packet preamble
        assert 51 / 2400 == approx(0.02125)  # postamble
        assert 64 / 2400 == approx(0.0266666666667)  # GPS preamble


class TestCycleGeometry:
    """Section 3.3/3.4 derivations."""

    def test_n_37_forward_slots(self):
        # N = (12800 - 450 - 2*600) / 300 = 37 (Section 3.4)
        assert timing.NUM_FORWARD_DATA_SLOTS == 37

    def test_cycle_length(self):
        assert timing.CYCLE_LENGTH == approx(3.984375)  # paper: 3.9844

    def test_reverse_content_length(self):
        # 8 GPS slots + 8 data slots = 3.93 s (Section 3.3)
        assert timing.REVERSE_CONTENT_LENGTH == approx(3.93)

    def test_format2_content_matches_format1(self):
        # 3 GPS + 9 data + 0.03375 guard == 8 GPS + 8 data
        format2 = (3 * timing.GPS_SLOT_TIME + 9 * timing.DATA_SLOT_TIME
                   + timing.FORMAT2_TAIL_GUARD)
        assert format2 == approx(timing.REVERSE_CONTENT_LENGTH)

    def test_reverse_tail_guard(self):
        # paper rounds 0.054375 to 0.0544
        assert timing.REVERSE_TAIL_GUARD == approx(3.984375 - 3.93)

    def test_reverse_shift(self):
        # delta = preamble + CF1 + 20 ms = 0.30125 s (Section 3.4)
        assert timing.REVERSE_SHIFT == approx(0.30125)

    def test_five_gps_slots_merge_into_one_data_slot(self):
        # the conversion 5 GPS slots <-> 1 data slot must actually fit
        assert (timing.GPS_SLOTS_PER_DATA_SLOT * timing.GPS_SLOT_TIME
                >= timing.DATA_SLOT_TIME)

    def test_control_field_budget(self):
        # 630 bits used out of 768 available; 138 reserved (Section 3.1)
        assert timing.CONTROL_FIELD_INFO_BITS == 768
        assert timing.CONTROL_FIELD_USED_BITS == 630
        assert timing.CONTROL_FIELD_INFO_BITS \
            - timing.CONTROL_FIELD_USED_BITS == 138

    def test_control_field_bit_breakdown(self):
        gps = timing.GPS_SCHEDULE_ENTRIES * 6  # 48
        reverse = timing.REVERSE_SCHEDULE_ENTRIES * 6  # 54
        forward = timing.FORWARD_SCHEDULE_ENTRIES * 6  # 222
        acks = timing.REVERSE_ACK_ENTRIES * 22  # 198
        paging = timing.PAGING_ENTRIES * 6  # 108
        assert gps == 48
        assert reverse == 54
        assert forward == 222
        assert gps + reverse + forward + acks + paging == 630


class TestTable2:
    """Reverse channel access times, format 1 and format 2."""

    FORMAT1_GPS = [0.30125, 0.38875, 0.47625, 0.56375,
                   0.65125, 0.73875, 0.82625, 0.91375]
    FORMAT1_DATA = [1.00125, 1.40500, 1.80875, 2.21250,
                    2.61625, 3.02000, 3.42375, 3.82750]
    FORMAT2_GPS = [0.30125, 0.38875, 0.47625]
    # The paper's Table 2 lists 2.98625 for both data slots 7 and 8 of
    # format 2 -- an obvious typo (equal-spaced slots); the arithmetic
    # gives 3.39000 for slot 8 and the paper itself lists 3.39000 for
    # slot 9... which is also inconsistent.  We trust the arithmetic:
    # slot k at 0.56375 + (k-1) * 0.40375.
    FORMAT2_DATA = [0.56375 + i * 0.40375 for i in range(9)]

    def test_format1_gps_offsets(self):
        assert list(timing.FORMAT1.gps_offsets) \
            == pytest.approx(self.FORMAT1_GPS, abs=1e-9)

    def test_format1_data_offsets(self):
        assert list(timing.FORMAT1.data_offsets) \
            == pytest.approx(self.FORMAT1_DATA, abs=1e-9)

    def test_format2_gps_offsets(self):
        assert list(timing.FORMAT2.gps_offsets) \
            == pytest.approx(self.FORMAT2_GPS, abs=1e-9)

    def test_format2_data_offsets(self):
        assert list(timing.FORMAT2.data_offsets) \
            == pytest.approx(self.FORMAT2_DATA, abs=1e-9)
        assert timing.FORMAT2.data_offsets[0] == pytest.approx(0.56375)

    def test_gps_offsets_shared_across_formats(self):
        """Format switches must not move GPS slots 0-2 (QoS safety)."""
        assert timing.FORMAT1.gps_offsets[:3] == timing.FORMAT2.gps_offsets

    def test_format_selection(self):
        for count in range(0, 4):
            assert timing.reverse_layout(count).format_id == 2
        for count in range(4, 9):
            assert timing.reverse_layout(count).format_id == 1
        with pytest.raises(ValueError):
            timing.reverse_layout(-1)

    def test_first_gps_slot_follows_cf1_by_exactly_20ms(self):
        cf1_end = (timing.FORWARD_PREAMBLE1_SYMBOLS
                   / timing.FORWARD_SYMBOL_RATE + timing.CONTROL_FIELD_TIME)
        assert timing.FORMAT1.gps_offsets[0] - cf1_end \
            == pytest.approx(timing.MS_TURNAROUND_TIME)

    def test_only_last_data_slot_overlaps_next_cf1(self):
        """Section 3.4: after the shift, the only reverse slot overlapping
        the next cycle's first control fields is the last data slot."""
        for layout in (timing.FORMAT1, timing.FORMAT2):
            next_cf1_start = timing.CYCLE_LENGTH
            next_cf1_end = timing.CYCLE_LENGTH + timing.CF1_END
            ends = ([offset + timing.GPS_SLOT_TIME
                     for offset in layout.gps_offsets]
                    + [offset + timing.DATA_SLOT_TIME
                       for offset in layout.data_offsets])
            overlapping = [end for end in ends if end > next_cf1_start]
            assert len(overlapping) == 1
            # ... and it ends before CF1 does, so the base station can
            # acknowledge it in CF2.
            assert overlapping[0] < next_cf1_end

    def test_forward_slot_offsets(self):
        assert timing.forward_slot_offset(0) \
            == pytest.approx(timing.CF1_END)
        assert timing.forward_slot_offset(1) \
            == pytest.approx(timing.CF2_END)
        last = timing.forward_slot_offset(36)
        assert last + timing.FORWARD_SLOT_TIME \
            == pytest.approx(timing.CYCLE_LENGTH)
        with pytest.raises(ValueError):
            timing.forward_slot_offset(37)
        with pytest.raises(ValueError):
            timing.forward_slot_offset(-1)

    def test_forward_cycle_is_gapless(self):
        """Preambles + CFs + 37 slots tile the cycle exactly."""
        total = (timing.FORWARD_PREAMBLE_TOTAL_SYMBOLS
                 + 2 * timing.CONTROL_FIELD_SYMBOLS
                 + 37 * timing.FORWARD_SLOT_SYMBOLS)
        assert total / timing.FORWARD_SYMBOL_RATE \
            == pytest.approx(timing.CYCLE_LENGTH)

    def test_reverse_layout_helpers(self):
        assert timing.FORMAT1.gps_slot_interval() == timing.GPS_SLOT_TIME
        assert timing.FORMAT1.data_slot_interval() == timing.DATA_SLOT_TIME
