"""Theory vs simulation: the analytical models must agree with the DES."""

import math

import pytest

from repro import CellConfig, run_cell
from repro.analysis import (
    contention_success_probability,
    expected_message_delay_cycles,
    forward_raw_bitrate,
    gps_deadline_margin,
    gps_worst_case_access_delay,
    md1_mean_wait,
    reverse_capacity,
    reverse_protocol_efficiency,
    reverse_raw_bitrate,
    slotted_aloha_peak,
    slotted_aloha_throughput,
)
from repro.protocols import SlottedAloha


class TestChannelBudgets:
    def test_raw_bitrates_match_section_2_2(self):
        assert forward_raw_bitrate() == 6400  # "up to 6.4 kbps"
        assert reverse_raw_bitrate() == 4800  # "4.8 kbps"

    def test_reverse_efficiency_is_sobering(self):
        """Preambles, pilots, parity, GPS and contention slots eat most
        of the 4.8 kbps: well under half survives as user payload."""
        efficiency = reverse_protocol_efficiency(num_gps_users=3,
                                                 contention_slots=1)
        assert 0.10 < efficiency < 0.35

    def test_capacity_format_dependence(self):
        few_gps = reverse_capacity(num_gps_users=1)
        many_gps = reverse_capacity(num_gps_users=8)
        assert few_gps.data_slots == 9
        assert many_gps.data_slots == 8
        assert few_gps.payload_bytes_per_cycle \
            > many_gps.payload_bytes_per_cycle
        static = reverse_capacity(num_gps_users=1,
                                  dynamic_adjustment=False)
        assert static.data_slots == 8

    def test_max_utilization_formula(self):
        capacity = reverse_capacity(num_gps_users=2, contention_slots=1)
        assert capacity.max_utilization == pytest.approx(8 / 9)


class TestCapacityAgainstSimulation:
    def test_saturation_matches_theory(self):
        """The simulated saturation utilization equals the analytical
        (d - contention)/d ceiling to within a few percent."""
        theory = reverse_capacity(num_gps_users=2).max_utilization
        stats = run_cell(CellConfig(num_data_users=9, num_gps_users=2,
                                    load_index=1.2, cycles=250,
                                    warmup_cycles=40, seed=41))
        assert stats.utilization() == pytest.approx(theory, rel=0.04)

    def test_throughput_in_bytes_per_second(self):
        capacity = reverse_capacity(num_gps_users=2)
        stats = run_cell(CellConfig(num_data_users=9, num_gps_users=2,
                                    load_index=1.2, cycles=250,
                                    warmup_cycles=40, seed=41))
        measured = (stats.data_packets_delivered * 44
                    / (stats.measured_cycles * 3.984375))
        assert measured == pytest.approx(
            capacity.payload_bytes_per_second, rel=0.06)


class TestDelayModel:
    def test_md1_formula(self):
        assert md1_mean_wait(0.0, 1.0) == 0.0
        assert md1_mean_wait(0.5, 2.0) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            md1_mean_wait(1.0, 1.0)

    def test_saturated_delay_is_infinite(self):
        assert expected_message_delay_cycles(1.0) == math.inf

    @pytest.mark.parametrize("load", [0.3, 0.5, 0.7])
    def test_simulated_delay_within_model_band(self, load):
        """Below saturation the sim delay agrees with the pipeline+M/D/1
        model to within a factor of ~2 -- the sanity band that catches
        gross scheduler or accounting bugs."""
        theory = expected_message_delay_cycles(load, num_gps_users=2)
        stats = run_cell(CellConfig(num_data_users=9, num_gps_users=2,
                                    load_index=load, cycles=300,
                                    warmup_cycles=40, seed=42))
        measured = stats.mean_message_delay_cycles()
        assert theory / 2.2 < measured < theory * 2.2

    def test_delay_model_monotonic_in_load(self):
        delays = [expected_message_delay_cycles(load)
                  for load in (0.2, 0.4, 0.6, 0.8)]
        assert delays == sorted(delays)


class TestAlohaTheory:
    def test_throughput_formula(self):
        assert slotted_aloha_throughput(0) == 0
        assert slotted_aloha_throughput(1.0) \
            == pytest.approx(slotted_aloha_peak())
        assert slotted_aloha_peak() == pytest.approx(0.3679, abs=1e-4)

    def test_simulated_aloha_matches_formula(self):
        """Saturated p-persistent ALOHA with n terminals at p = G/n
        approaches S = G e^-G."""
        for G in (0.5, 1.0, 2.0):
            protocol = SlottedAloha(num_terminals=50,
                                    arrival_probability=1.0,
                                    transmit_probability=G / 50,
                                    seed=int(G * 10))
            stats = protocol.run(40000)
            assert stats.throughput() == pytest.approx(
                slotted_aloha_throughput(G), abs=0.03)

    def test_contention_success_probability(self):
        # 1 contender, 3 slots: P(this slot holds it) = 1/3.
        assert contention_success_probability(1, 3) \
            == pytest.approx(1 / 3)
        assert contention_success_probability(0, 3) == 0.0
        # 2 contenders, 2 slots: P(this slot has exactly one) = 1/2.
        assert contention_success_probability(2, 2) \
            == pytest.approx(0.5)
        # Heavily overloaded slots are nearly hopeless.
        assert contention_success_probability(63, 7) < 1e-2

    def test_validation(self):
        with pytest.raises(ValueError):
            slotted_aloha_throughput(-1)
        with pytest.raises(ValueError):
            contention_success_probability(1, 0)


class TestGpsBound:
    def test_worst_case_below_deadline(self):
        assert gps_worst_case_access_delay() < 4.0
        assert gps_deadline_margin() == pytest.approx(4.0 - 3.984375)

    def test_simulated_max_delay_below_analytical_bound(self):
        stats = run_cell(CellConfig(num_data_users=4, num_gps_users=8,
                                    load_index=0.5, cycles=200,
                                    warmup_cycles=30, seed=43))
        assert stats.gps_access_delay.max \
            <= gps_worst_case_access_delay() + 1e-9
