"""Tests for channel error models and the forward/reverse channels."""

import random

import pytest

from repro.phy.channel import (
    ForwardChannel,
    Link,
    ReverseChannel,
    Transmission,
)
from repro.phy.errors import (
    GilbertElliottModel,
    IndependentSymbolErrors,
    OutageModel,
    PerfectChannelModel,
)
from repro.phy.rs import RS_64_48
from repro.sim import Simulator


class TestErrorModels:
    def test_perfect_changes_nothing(self):
        rng = random.Random(1)
        codeword = list(range(64))
        assert PerfectChannelModel().corrupt(codeword, rng) == codeword

    def test_iid_error_rate_statistics(self):
        rng = random.Random(2)
        model = IndependentSymbolErrors(0.1)
        flips = 0
        trials = 200
        for _ in range(trials):
            out = model.corrupt([0] * 64, rng)
            flips += sum(1 for symbol in out if symbol != 0)
        rate = flips / (trials * 64)
        assert 0.08 < rate < 0.12

    def test_iid_rate_validation(self):
        with pytest.raises(ValueError):
            IndependentSymbolErrors(1.5)

    def test_gilbert_elliott_burstiness(self):
        """Errors cluster: conditional error probability after an error
        greatly exceeds the marginal error probability."""
        rng = random.Random(3)
        model = GilbertElliottModel(p_good=0.0, p_bad=0.5,
                                    p_good_to_bad=5e-4, p_bad_to_good=1e-2)
        stream = []
        for _ in range(400):
            out = model.corrupt([0] * 64, rng)
            stream.extend(1 if symbol else 0 for symbol in out)
        marginal = sum(stream) / len(stream)
        after_error = [stream[i + 1] for i in range(len(stream) - 1)
                       if stream[i]]
        assert marginal > 0
        conditional = sum(after_error) / len(after_error)
        assert conditional > 5 * marginal

    def test_gilbert_elliott_stationary_probability(self):
        model = GilbertElliottModel(p_good_to_bad=1e-4, p_bad_to_good=1e-2)
        assert model.stationary_bad_probability \
            == pytest.approx(1e-4 / (1e-4 + 1e-2))

    def test_gilbert_elliott_dichotomy_through_rs(self):
        """The paper's observed behaviour: codewords either decode clean
        or fail; the middle ground (delivered corrupted) never happens --
        guaranteed by construction, but fade bursts must actually produce
        a nonzero failure rate."""
        rng = random.Random(4)
        model = GilbertElliottModel(p_good=0.002, p_bad=0.4,
                                    p_good_to_bad=2e-3, p_bad_to_good=1e-2)
        outcomes = {"clean": 0, "failed": 0}
        message = bytes(48)
        for _ in range(300):
            received = model.corrupt(RS_64_48.encode(message), rng)
            try:
                decoded = RS_64_48.decode(received)
                assert decoded == message  # never silently corrupted
                outcomes["clean"] += 1
            except Exception:
                outcomes["failed"] += 1
        assert outcomes["failed"] > 5
        assert outcomes["clean"] > 100

    def test_outage_statistics(self):
        rng = random.Random(5)
        model = OutageModel(0.25)
        losses = sum(model.is_lost(rng) for _ in range(4000))
        assert 0.22 < losses / 4000 < 0.28

    def test_outage_corrupt_kills_codeword(self):
        rng = random.Random(6)
        model = OutageModel(1.0)
        received = model.corrupt(RS_64_48.encode(bytes(48)), rng)
        assert not RS_64_48.check(received)

    def test_ge_advance_resamples_state(self):
        rng = random.Random(7)
        model = GilbertElliottModel(p_good_to_bad=0.5, p_bad_to_good=0.5)
        model.state = model.BAD
        model.advance(10.0, rng)  # long gap: state resampled
        assert model.state in (model.GOOD, model.BAD)


class TestLink:
    def test_perfect_link_survives(self):
        link = Link()
        assert link.survives(5)
        assert link.codewords_sent == 5
        assert link.codewords_lost == 0

    def test_outage_link_statistics(self):
        link = Link(OutageModel(0.3), random.Random(8))
        survived = sum(link.survives(1) for _ in range(2000))
        assert 0.62 < survived / 2000 < 0.78

    def test_multi_codeword_transmission_all_or_nothing(self):
        link = Link(OutageModel(0.5), random.Random(9))
        for _ in range(50):
            link.survives(2)
        assert link.codewords_sent == 100

    def test_deliver_codewords_roundtrip(self):
        link = Link()
        message = bytes(range(48))
        decoded = link.deliver_codewords([RS_64_48.encode(message)])
        assert decoded == [message]

    def test_deliver_codewords_loss(self):
        link = Link(OutageModel(1.0), random.Random(10))
        assert link.deliver_codewords([RS_64_48.encode(bytes(48))]) is None

    def test_symbol_model_through_real_codec(self):
        link = Link(IndependentSymbolErrors(0.5), random.Random(11))
        survived = sum(link.survives(1) for _ in range(50))
        assert survived < 5  # half the symbols corrupted: hopeless


class TestReverseChannel:
    def _tx(self, sim, sender, duration=1.0, start=None):
        return Transmission(sender=sender, payload=sender,
                            start=sim.now if start is None else start,
                            duration=duration)

    def test_lone_transmission_delivered(self):
        sim = Simulator()
        channel = ReverseChannel(sim)
        outcomes = []
        channel.add_listener(lambda tx, ok: outcomes.append((tx.sender, ok)))
        channel.transmit(self._tx(sim, "a"), Link())
        sim.run()
        assert outcomes == [("a", True)]

    def test_overlapping_transmissions_collide(self):
        sim = Simulator()
        channel = ReverseChannel(sim)
        outcomes = []
        channel.add_listener(lambda tx, ok: outcomes.append((tx.sender, ok,
                                                             tx.collided)))
        channel.transmit(self._tx(sim, "a"), Link())
        channel.transmit(self._tx(sim, "b"), Link())
        sim.run()
        assert outcomes == [("a", False, True), ("b", False, True)]
        assert channel.total_collisions == 2

    def test_sequential_transmissions_do_not_collide(self):
        sim = Simulator()
        channel = ReverseChannel(sim)
        outcomes = []
        channel.add_listener(lambda tx, ok: outcomes.append(ok))

        def sender():
            channel.transmit(self._tx(sim, "a", duration=1.0), Link())
            yield sim.timeout(1.5)
            channel.transmit(self._tx(sim, "b", duration=1.0), Link())

        sim.process(sender())
        sim.run()
        assert outcomes == [True, True]

    def test_partial_overlap_still_collides(self):
        sim = Simulator()
        channel = ReverseChannel(sim)
        outcomes = []
        channel.add_listener(lambda tx, ok: outcomes.append(ok))

        def sender():
            channel.transmit(self._tx(sim, "a", duration=1.0), Link())
            yield sim.timeout(0.9)
            channel.transmit(self._tx(sim, "b", duration=1.0), Link())

        sim.process(sender())
        sim.run()
        assert outcomes == [False, False]

    def test_lossy_link_marks_lost(self):
        sim = Simulator()
        channel = ReverseChannel(sim)
        outcomes = []
        channel.add_listener(lambda tx, ok: outcomes.append((ok,
                                                             tx.lost,
                                                             tx.collided)))
        channel.transmit(self._tx(sim, "a"),
                         Link(OutageModel(1.0), random.Random(1)))
        sim.run()
        assert outcomes == [(False, True, False)]

    def test_start_time_must_be_now(self):
        sim = Simulator()
        channel = ReverseChannel(sim)
        with pytest.raises(ValueError):
            channel.transmit(self._tx(sim, "a", start=5.0), Link())


class TestForwardChannel:
    def test_broadcast_reaches_all_receivers(self):
        sim = Simulator()
        channel = ForwardChannel(sim)
        received = []
        for name in ("a", "b", "c"):
            channel.attach(name, Link(),
                           lambda tx, ok, n=name: received.append((n, ok)))
        channel.broadcast(Transmission(sender="bs", payload="cf",
                                       start=0.0, duration=0.2))
        sim.run()
        assert sorted(received) == [("a", True), ("b", True), ("c", True)]

    def test_per_receiver_independent_loss(self):
        sim = Simulator()
        channel = ForwardChannel(sim)
        received = {}
        channel.attach("good", Link(),
                       lambda tx, ok: received.setdefault("good", ok))
        channel.attach("bad", Link(OutageModel(1.0), random.Random(2)),
                       lambda tx, ok: received.setdefault("bad", ok))
        channel.broadcast(Transmission(sender="bs", payload="cf",
                                       start=0.0, duration=0.2))
        sim.run()
        assert received == {"good": True, "bad": False}

    def test_detach(self):
        sim = Simulator()
        channel = ForwardChannel(sim)
        received = []
        channel.attach("a", Link(), lambda tx, ok: received.append("a"))
        channel.detach("a")
        channel.broadcast(Transmission(sender="bs", payload="x",
                                       start=0.0, duration=0.1))
        sim.run()
        assert received == []

    def test_delivery_at_end_time(self):
        sim = Simulator()
        channel = ForwardChannel(sim)
        times = []
        channel.attach("a", Link(), lambda tx, ok: times.append(sim.now))
        channel.broadcast(Transmission(sender="bs", payload="x",
                                       start=0.0, duration=0.28125))
        sim.run()
        assert times == [0.28125]
