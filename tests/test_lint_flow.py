"""maclint v2: whole-program taint, reachability scoping, SARIF, CLI.

Every taint fixture here is a two-module flow that the v1 per-module
pass provably misses (asserted in each test), so the suite demonstrates
the interprocedural value of the project index rather than re-testing
the syntactic rules.
"""

import json
import subprocess

from repro.lint import check_project, check_source, sarif_report
from repro.lint.checker import Finding
from repro.lint.cli import changed_files, main as lint_main
from repro.lint.project import Project
from repro.lint.rules import RULES


def rules_of(report):
    return [finding.rule for finding in report.findings]


def project_of(*sources):
    return Project.build(list(sources))


# -- fixtures: one seeded flow per taint kind, each invisible to v1 ------------------

# rng: the draw hides behind a helper in a module where DET001 does not
# apply; the value then crosses into det-scoped sim code.
RNG_HELPER = (
    "src/repro/experiments/jitter.py",
    "import random\n"
    "\n"
    "\n"
    "def draw_jitter():\n"
    "    return random.random()\n",
)
RNG_CALLER = (
    "src/repro/sim/backoff.py",
    "from repro.experiments.jitter import draw_jitter\n"
    "\n"
    "\n"
    "def next_delay(base):\n"
    "    return base + draw_jitter()\n",
)

# clock: the wall-clock read lives in serve (allowed there), but the
# value lands in a journal record two calls later.
CLOCK_SOURCE = (
    "src/repro/serve/pacing.py",
    "import time\n"
    "\n"
    "\n"
    "def stamp():\n"
    "    return time.monotonic()\n",
)
CLOCK_SINK = (
    "src/repro/serve/recorder.py",
    "from repro.serve.pacing import stamp\n"
    "\n"
    "\n"
    "def record(journal, cycle):\n"
    "    started = stamp()\n"
    "    journal.append_event({\"cycle\": cycle, \"t\": started})\n",
)

# order: dict-iteration order computed behind a helper feeds an
# envelope constructor in another module.
ORDER_HELPER = (
    "src/repro/shard/batching.py",
    "from typing import Dict, List\n"
    "\n"
    "\n"
    "def arrival_order(pending: Dict[str, int]) -> List[str]:\n"
    "    order = []\n"
    "    for name in pending:\n"
    "        order.append(name)\n"
    "    return order\n",
)
ORDER_ENVELOPES = (
    "src/repro/shard/envelopes.py",
    "def message_envelope(payload):\n"
    "    return {\"payload\": payload}\n",
)
ORDER_SINK = (
    "src/repro/shard/emitter.py",
    "from repro.shard.batching import arrival_order\n"
    "from repro.shard.envelopes import message_envelope\n"
    "\n"
    "\n"
    "def emit(pending):\n"
    "    return message_envelope(arrival_order(pending))\n",
)


class TestTaintKinds:
    def test_v1_misses_every_fixture(self):
        for path, source in (RNG_HELPER, RNG_CALLER, CLOCK_SOURCE,
                             CLOCK_SINK, ORDER_HELPER, ORDER_SINK):
            assert rules_of(check_source(source, path)) == [], path

    def test_rng_draw_behind_helper(self):
        report = check_project([RNG_HELPER, RNG_CALLER])
        assert rules_of(report) == ["FLOW101"]
        finding = report.findings[0]
        assert finding.path == RNG_CALLER[0]
        assert finding.line == 5  # the call site entering the core
        assert "random.random" in finding.message
        assert "jitter.py:5" in finding.message

    def test_clock_reaching_journal(self):
        report = check_project([CLOCK_SOURCE, CLOCK_SINK])
        assert rules_of(report) == ["FLOW102"]
        finding = report.findings[0]
        assert finding.path == CLOCK_SINK[0]
        assert finding.line == 6  # the append_event sink line
        assert "time.monotonic" in finding.message

    def test_clock_without_sink_is_clean(self):
        report = check_project([CLOCK_SOURCE])
        assert rules_of(report) == []

    def test_dict_order_reaching_envelope(self):
        report = check_project(
            [ORDER_HELPER, ORDER_ENVELOPES, ORDER_SINK])
        assert rules_of(report) == ["FLOW103"]
        finding = report.findings[0]
        assert finding.path == ORDER_SINK[0]
        assert finding.line == 6
        assert "batching.py" in finding.message

    def test_sorted_sanitizes_order(self):
        sink = (ORDER_SINK[0], ORDER_SINK[1].replace(
            "arrival_order(pending)",
            "sorted(arrival_order(pending))"))
        report = check_project([ORDER_HELPER, ORDER_ENVELOPES, sink])
        assert rules_of(report) == []

    def test_no_flow_falls_back_to_v1(self):
        report = check_project([CLOCK_SOURCE, CLOCK_SINK], flow=False)
        assert rules_of(report) == []


class TestPragmas:
    def test_sink_line_pragma_suppresses_flow(self):
        path, source = CLOCK_SINK
        source = source.replace(
            "journal.append_event({\"cycle\": cycle, \"t\": started})",
            "journal.append_event({\"cycle\": cycle, \"t\": started})"
            "  # maclint: disable=FLOW102")
        report = check_project([CLOCK_SOURCE, (path, source)])
        assert rules_of(report) == []
        assert [f.rule for f in report.suppressed] == ["FLOW102"]

    def test_source_line_pragma_does_not_suppress(self):
        path, source = CLOCK_SOURCE
        source = source.replace(
            "return time.monotonic()",
            "return time.monotonic()  # maclint: disable=FLOW102")
        report = check_project([(path, source), CLOCK_SINK])
        # the pragma sits where the value is born, not where it sinks;
        # the determinism debt lives at the sink, so it still fires.
        assert rules_of(report) == ["FLOW102"]


class TestReachability:
    def test_hot_via_call_graph(self):
        # obs/collector.py is in no curated HOT list; v2 flags the
        # print because the collector is reachable from Simulator.step.
        collector = (
            "src/repro/obs/collector.py",
            "def note(value):\n"
            "    print(value)\n",
        )
        core = (
            "src/repro/sim/core.py",
            "from repro.obs.collector import note\n"
            "\n"
            "\n"
            "class Simulator:\n"
            "    def step(self):\n"
            "        note(1)\n",
        )
        assert rules_of(check_source(*reversed(collector))) == []
        report = check_project([collector, core])
        assert rules_of(report) == ["HOT001"]
        assert report.findings[0].path == collector[0]

    def test_unreachable_print_is_clean(self):
        collector = (
            "src/repro/obs/collector.py",
            "def note(value):\n"
            "    print(value)\n",
        )
        report = check_project([collector])
        assert rules_of(report) == []

    def test_par004_pool_reachable_mutation(self):
        fixture = (
            "src/repro/engine/warm_cache.py",
            "from repro.engine.spec import Point\n"
            "\n"
            "CACHE = {}\n"
            "\n"
            "\n"
            "def task(config):\n"
            "    CACHE[config[\"seed\"]] = config\n"
            "    return len(CACHE)\n"
            "\n"
            "\n"
            "def build():\n"
            "    return Point(name=\"p\", config={}, fn=task)\n",
        )
        assert rules_of(check_source(*reversed(fixture))) == []
        report = check_project([fixture])
        assert rules_of(report) == ["PAR004"]
        assert report.findings[0].line == 7
        assert "CACHE" in report.findings[0].message

    def test_par004_skips_unreachable_mutation(self):
        fixture = (
            "src/repro/engine/warm_cache.py",
            "CACHE = {}\n"
            "\n"
            "\n"
            "def warm(config):\n"
            "    CACHE[config[\"seed\"]] = config\n",
        )
        report = check_project([fixture])
        assert rules_of(report) == []


class TestProjectIndex:
    def test_call_graph_resolves_cross_module(self):
        project = project_of(RNG_HELPER, RNG_CALLER)
        caller = "repro.sim.backoff.next_delay"
        callee = "repro.experiments.jitter.draw_jitter"
        assert caller in project.functions
        edges = {target for site in project.calls.get(caller, ())
                 for target in site.targets}
        assert callee in edges

    def test_reachability_closure(self):
        project = project_of(RNG_HELPER, RNG_CALLER)
        reached = project.reachable_from(
            ["repro.sim.backoff.next_delay"])
        assert "repro.experiments.jitter.draw_jitter" in reached

    def test_syntax_error_file_is_skipped(self):
        report = check_project(
            [("src/repro/serve/broken.py", "def broken(:\n"),
             CLOCK_SOURCE])
        assert any("syntax error" in error for error in report.errors)


# -- SARIF ---------------------------------------------------------------------------


def _finding(rule="FLOW102", path="src/repro/serve/recorder.py",
             line=6):
    return Finding(rule=rule, path=path, line=line, col=4,
                   message=RULES[rule].summary, text="journal.append")


class TestSarif:
    def test_document_shape(self):
        document = sarif_report([_finding()],
                                [_finding(rule="PAR001", line=9)])
        assert document["version"] == "2.1.0"
        assert document["$schema"].endswith("sarif-schema-2.1.0.json")
        run = document["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "maclint"
        rule_ids = [rule["id"] for rule in driver["rules"]]
        assert rule_ids == sorted(rule_ids)
        results = run["results"]
        assert len(results) == 2
        for result in results:
            assert results[result["ruleIndex"]] is not None
            assert rule_ids[result["ruleIndex"]] == result["ruleId"]
            location = result["locations"][0]["physicalLocation"]
            assert location["artifactLocation"]["uriBaseId"] \
                == "REPOROOT"
            assert location["region"]["startLine"] >= 1
            assert location["region"]["startColumn"] >= 1
            assert result["partialFingerprints"]["maclint/v1"]
        assert json.loads(json.dumps(document)) == document

    def test_baselined_results_are_suppressed(self):
        document = sarif_report([_finding()],
                                [_finding(rule="PAR001", line=9)])
        by_rule = {result["ruleId"]: result
                   for result in document["runs"][0]["results"]}
        assert "suppressions" not in by_rule["FLOW102"]
        assert by_rule["PAR001"]["suppressions"] \
            == [{"kind": "external"}]

    def test_rule_metadata_complete(self):
        document = sarif_report([_finding()])
        rule = document["runs"][0]["tool"]["driver"]["rules"][0]
        assert rule["shortDescription"]["text"]
        assert rule["fullDescription"]["text"]
        assert rule["defaultConfiguration"]["level"] == "error"


# -- CLI: --sarif / --changed / ratchet ----------------------------------------------


class TestCliV2:
    def test_sarif_file_written(self, tmp_path, capsys):
        fixture = tmp_path / "fixture.py"
        fixture.write_text("import random\nx = random.Random(3)\n")
        out = tmp_path / "report.sarif"
        exit_code = lint_main([str(fixture), "--no-baseline",
                               "--sarif", str(out)])
        capsys.readouterr()
        assert exit_code == 1
        document = json.loads(out.read_text())
        assert document["version"] == "2.1.0"
        assert [result["ruleId"]
                for result in document["runs"][0]["results"]] \
            == ["DET003"]

    def test_changed_files_in_git_repo(self, tmp_path):
        def git(*argv):
            subprocess.run(
                ["git", "-c", "user.email=t@t", "-c", "user.name=t",
                 *argv],
                cwd=tmp_path, check=True, capture_output=True)

        git("init", "-q")
        (tmp_path / "a.py").write_text("x = 1\n")
        (tmp_path / "notes.txt").write_text("not python\n")
        git("add", ".")
        git("commit", "-q", "-m", "seed")
        (tmp_path / "a.py").write_text("x = 2\n")
        (tmp_path / "b.py").write_text("y = 1\n")
        changed = changed_files(tmp_path)
        assert [path.name for path in changed] == ["a.py", "b.py"]

    def test_changed_files_outside_git(self, tmp_path):
        assert changed_files(tmp_path / "not-a-repo") is None

    def test_changed_conflicts_with_paths(self, tmp_path, capsys):
        assert lint_main(["--changed", str(tmp_path)]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_ratchet_requires_full_tree(self, tmp_path, capsys):
        assert lint_main(["--ratchet", str(tmp_path)]) == 2
        assert "full-tree" in capsys.readouterr().err

    def test_ratchet_fails_on_stale_baseline(self, tmp_path, capsys):
        stale = tmp_path / "stale.json"
        stale.write_text(json.dumps({
            "schema": "repro/maclint-baseline@1",
            "findings": [{"fingerprint": "0" * 16,
                          "rule": "DET001",
                          "path": "src/repro/gone.py",
                          "line": 1,
                          "text": "x = random.random()"}],
        }))
        exit_code = lint_main(["--ratchet", "--no-flow",
                               "--baseline", str(stale)])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "stale" in captured.err

    def test_ratchet_passes_on_exact_baseline(self, capsys):
        assert lint_main(["--ratchet", "--no-flow"]) == 0
        capsys.readouterr()

    def test_write_baseline_refuses_growth(self, tmp_path, capsys):
        fixture = tmp_path / "fixture.py"
        fixture.write_text("import random\nx = random.Random(3)\n")
        baseline = tmp_path / "base.json"
        assert lint_main([str(fixture), "--baseline", str(baseline),
                          "--write-baseline"]) == 0
        fixture.write_text("import random\n"
                           "x = random.Random(3)\n"
                           "y = random.Random(4)\n")
        capsys.readouterr()
        assert lint_main([str(fixture), "--baseline", str(baseline),
                          "--write-baseline"]) == 1
        assert "refusing to grow" in capsys.readouterr().err
        assert lint_main([str(fixture), "--baseline", str(baseline),
                          "--write-baseline",
                          "--allow-baseline-growth"]) == 0

    def test_full_tree_is_clean_with_flow(self, capsys):
        exit_code = lint_main(["--json"])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert payload["schema"] == "repro/maclint@2"
        assert payload["ok"] is True
        assert payload["new"] == []
        assert payload["stale_baseline"] == 0
        # the whole-program pass adds no debt beyond the three
        # grandfathered PAR001 singletons.
        assert [f["rule"] for f in payload["baselined"]] \
            == ["PAR001", "PAR001", "PAR001"]
