"""Unit and property tests for the control-field block (Fig. 2)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.fields import AckEntry, ControlFields, EIN_EMPTY
from repro.phy import timing
from repro.phy.rs import RS_64_48, RSDecodeFailure

uid_or_none = st.one_of(st.none(), st.integers(0, 62))


def ack_entries():
    return st.one_of(
        st.just(AckEntry.empty()),
        st.builds(AckEntry.data_ack, st.integers(0, 62)),
        st.builds(AckEntry.registration_reply,
                  st.integers(0, 0xFFFE), st.integers(0, 62)))


control_fields = st.builds(
    ControlFields,
    cycle=st.integers(0, 0xFFFF),
    which=st.sampled_from([1, 2]),
    gps_schedule=st.lists(uid_or_none, max_size=8),
    reverse_schedule=st.lists(uid_or_none, max_size=9),
    forward_schedule=st.lists(uid_or_none, max_size=37),
    reverse_acks=st.lists(ack_entries(), max_size=9),
    paging=st.lists(uid_or_none, max_size=18),
)


class TestAckEntry:
    def test_empty(self):
        entry = AckEntry.empty()
        assert entry.is_empty
        assert not entry.is_data_ack
        assert not entry.is_registration_reply

    def test_data_ack(self):
        entry = AckEntry.data_ack(17)
        assert entry.is_data_ack
        assert entry.uid == 17
        assert not entry.is_empty

    def test_registration_reply(self):
        entry = AckEntry.registration_reply(0xBEEF, 9)
        assert entry.is_registration_reply
        assert entry.ein == 0xBEEF
        assert entry.uid == 9


class TestEncoding:
    def test_used_bits_is_630(self):
        """Section 3.1: the control fields total exactly 630 bits."""
        cf = ControlFields(cycle=0, which=1)
        data = cf.encode()
        assert len(data) == 2 * timing.RS_INFO_BYTES  # two RS codewords

    def test_roundtrip_basic(self):
        cf = ControlFields(
            cycle=1234, which=2,
            gps_schedule=[1, 2, None, 4, None, None, None, None],
            reverse_schedule=[None, 5, 5, 6, None, None, None, None, 7],
            forward_schedule=[8] * 37,
            reverse_acks=[AckEntry.data_ack(5),
                          AckEntry.registration_reply(0x1001, 9)],
            paging=[10, 11])
        decoded = ControlFields.decode(cf.encode())
        assert decoded.cycle == 1234
        assert decoded.which == 2
        assert decoded.gps_schedule[:4] == [1, 2, None, 4]
        assert decoded.reverse_schedule[:9] \
            == [None, 5, 5, 6, None, None, None, None, 7]
        assert decoded.forward_schedule == [8] * 37
        assert decoded.reverse_acks[0] == AckEntry.data_ack(5)
        assert decoded.reverse_acks[1] \
            == AckEntry.registration_reply(0x1001, 9)
        assert decoded.reverse_acks[2].is_empty
        assert decoded.paging[:2] == [10, 11]
        assert all(entry is None for entry in decoded.paging[2:])

    @given(control_fields)
    def test_property_roundtrip(self, cf):
        decoded = ControlFields.decode(cf.encode())
        pad = lambda entries, size: (list(entries)
                                     + [None] * (size - len(entries)))
        assert decoded.gps_schedule == pad(cf.gps_schedule, 8)
        assert decoded.reverse_schedule == pad(cf.reverse_schedule, 9)
        assert decoded.forward_schedule == pad(cf.forward_schedule, 37)
        assert decoded.paging == pad(cf.paging, 18)
        assert decoded.cycle == cf.cycle
        assert decoded.which == cf.which
        expected_acks = (list(cf.reverse_acks)
                         + [AckEntry.empty()] * (9 - len(cf.reverse_acks)))
        assert decoded.reverse_acks == expected_acks

    def test_too_many_entries_rejected(self):
        with pytest.raises(ValueError):
            ControlFields(cycle=0, which=1,
                          gps_schedule=[1] * 9).encode()
        with pytest.raises(ValueError):
            ControlFields(cycle=0, which=1,
                          reverse_acks=[AckEntry.empty()] * 10).encode()

    def test_invalid_which_rejected(self):
        with pytest.raises(ValueError):
            ControlFields(cycle=0, which=3)


class TestRSIntegration:
    def test_codeword_roundtrip(self):
        cf = ControlFields(cycle=7, which=1,
                           gps_schedule=[3, 1, 4],
                           reverse_schedule=[None, 1, 5, 9, 2, 6, 5, 3, 5])
        codewords = cf.to_codewords()
        assert len(codewords) == 2
        assert all(len(cw) == 64 for cw in codewords)
        decoded = ControlFields.from_codewords(codewords)
        assert decoded.gps_schedule[:3] == [3, 1, 4]
        assert decoded.reverse_schedule \
            == [None, 1, 5, 9, 2, 6, 5, 3, 5]

    def test_codewords_survive_correctable_errors(self):
        import random
        rng = random.Random(3)
        cf = ControlFields(cycle=9, which=2, gps_schedule=[1, 2])
        codewords = [bytearray(cw) for cw in cf.to_codewords()]
        for codeword in codewords:
            for position in rng.sample(range(64), 8):
                codeword[position] ^= rng.randrange(1, 256)
        decoded = ControlFields.from_codewords(
            [bytes(cw) for cw in codewords])
        assert decoded.gps_schedule[:2] == [1, 2]

    def test_codewords_fail_loudly_beyond_capacity(self):
        import random
        rng = random.Random(4)
        cf = ControlFields(cycle=9, which=1)
        codewords = [bytearray(cw) for cw in cf.to_codewords()]
        for position in rng.sample(range(64), 30):
            codewords[0][position] ^= rng.randrange(1, 256)
        with pytest.raises(RSDecodeFailure):
            ControlFields.from_codewords([bytes(cw) for cw in codewords])


class TestDerivedViews:
    def test_active_gps_users_and_format(self):
        cf = ControlFields(cycle=0, which=1, gps_schedule=[1, 2, 3])
        assert cf.active_gps_users == 3
        assert cf.reverse_format == 2
        cf4 = ControlFields(cycle=0, which=1, gps_schedule=[1, 2, 3, 4])
        assert cf4.reverse_format == 1
        assert cf4.layout() is timing.FORMAT1

    def test_contention_slots_excludes_assigned(self):
        cf = ControlFields(cycle=0, which=1,
                           gps_schedule=[1, 2, 3, 4],  # format 1: 8 slots
                           reverse_schedule=[None, None, 5, 5, 6, 6, 7, 7])
        assert cf.contention_slots() == [0, 1]

    def test_contention_slots_never_include_last(self):
        cf = ControlFields(cycle=0, which=1, gps_schedule=[1, 2, 3, 4],
                           reverse_schedule=[None] * 8)
        assert cf.contention_slots() == list(range(7))  # slot 7 excluded

    def test_contention_slots_format2(self):
        cf = ControlFields(cycle=0, which=1, gps_schedule=[1],
                           reverse_schedule=[None] + [2] * 7 + [None])
        # 9 data slots in format 2; slot 8 is last and excluded
        assert cf.contention_slots() == [0]
