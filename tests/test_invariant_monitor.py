"""InvariantMonitor edge cases the fuzz oracles lean on.

The fuzzer treats the monitor as ground truth, so these pin the three
properties its verdicts depend on: a corruption is reported on the
exact first offending cycle (bucketing fingerprints carry that cycle),
a crash/restart sequence leaves the monitor silent (restarts must not
be findings), and the registry bijection check fires under concurrent
lease eviction + re-registration churn (the uid-reuse window).
"""

import pytest

from repro import CellConfig
from repro.core.cell import build_cell, run_cell_detailed
from repro.core.packets import SERVICE_DATA, SERVICE_GPS
from repro.core.registration import RegistrationModule
from repro.faults import crash, fade, restart
from repro.faults.invariants import CHECK_OFFSET
from repro.phy import timing


def _cycle_of(when: float) -> int:
    return int(when / timing.CYCLE_LENGTH)


class TestFirstOffendingCycle:
    def test_corruption_reported_on_its_first_cycle(self):
        """Corrupt the registry just before cycle N's check; the first
        recorded violation must carry cycle N, not N+1 or later."""
        config = CellConfig(num_data_users=3, num_gps_users=1,
                            load_index=0.4, cycles=40,
                            warmup_cycles=8, seed=11,
                            check_invariants=True)
        run = build_cell(config)
        target_cycle = 20
        # Advance to just *before* the monitor's check inside cycle 20
        # (checks fire at CHECK_OFFSET into each cycle), then corrupt.
        run.sim.run(until=target_cycle * timing.CYCLE_LENGTH
                    + 0.5 * CHECK_OFFSET)
        registry = run.base_station.registration
        record = registry.registrants()[0]
        # Drop the UID-side record only: the EIN map now dangles.
        del registry._by_uid[record.uid]
        run.sim.run(until=config.duration)
        monitor = run.monitor
        assert monitor.violations, "corruption went undetected"
        first_when, first_message = monitor.violations[0]
        assert _cycle_of(first_when) == target_cycle
        assert "registry" in first_message
        # The corruption persists, so later cycles keep re-reporting;
        # nothing is ever backdated before the offending cycle.
        assert len(monitor.violations) >= 2
        cycles = [_cycle_of(when) for when, _ in monitor.violations]
        assert min(cycles) == target_cycle
        assert max(cycles) > target_cycle

    def test_clean_run_reports_nothing(self):
        config = CellConfig(num_data_users=3, num_gps_users=1,
                            load_index=0.4, cycles=40,
                            warmup_cycles=8, seed=11,
                            check_invariants=True)
        run = run_cell_detailed(config)
        assert run.monitor.violations == []
        assert run.monitor.checks_run >= config.cycles - 1


class TestCleanAfterRestart:
    def test_crash_restart_sequence_stays_silent(self):
        """A full crash -> lease eviction -> restart -> re-registration
        arc is recovery working as designed, not a finding."""
        config = CellConfig(num_data_users=4, num_gps_users=2,
                            load_index=0.5, cycles=90,
                            warmup_cycles=12, seed=23,
                            faults=(crash("gps-1", 20),
                                    restart("gps-1", 34),
                                    crash("data-2", 25),
                                    restart("data-2", 30)),
                            liveness_lease_cycles=6,
                            check_invariants=True)
        run = run_cell_detailed(config)
        assert run.stats.faults_injected == 4
        # The GPS crash outlives the lease: eviction really happened.
        assert run.stats.lease_evictions >= 1
        assert run.monitor.violations == []
        assert run.stats.invariant_violations == 0
        # And the restarted units made it back.
        registry = run.base_station.registration
        assert registry.lookup_ein(run.gps_units[1].ein) is not None
        assert registry.lookup_ein(run.data_users[2].ein) is not None

    def test_monitor_keeps_checking_after_recovery(self):
        config = CellConfig(num_data_users=2, num_gps_users=1,
                            load_index=0.3, cycles=60,
                            warmup_cycles=10, seed=5,
                            faults=(crash("data-0", 18),
                                    restart("data-0", 24)),
                            liveness_lease_cycles=5,
                            check_invariants=True)
        run = run_cell_detailed(config)
        # One check per cycle from CHECK_OFFSET on, fault or no fault.
        assert run.monitor.checks_run >= config.cycles - 1


class TestBijectionUnderChurn:
    def test_eviction_and_reregistration_churn_holds_bijection(self):
        """A deep reverse fade longer than the lease forces eviction of
        an alive unit, whose re-registration then interleaves with the
        victim's zombie transmissions -- the uid-reuse window.  The
        per-cycle bijection check must hold throughout (round-robin
        allocation keeps the recycled uid out of reach)."""
        config = CellConfig(num_data_users=5, num_gps_users=2,
                            load_index=0.6, cycles=80,
                            warmup_cycles=10, seed=31,
                            faults=(fade("gps-0", 20, duration_cycles=9,
                                         loss=1.0, channel="reverse"),
                                    fade("data-1", 24, duration_cycles=9,
                                         loss=1.0, channel="reverse")),
                            liveness_lease_cycles=6,
                            check_invariants=True)
        run = run_cell_detailed(config)
        assert run.stats.lease_evictions >= 1, \
            "fade was meant to outlive the lease"
        assert run.monitor.violations == []
        run.base_station.registration.check_invariants()

    def test_registry_bijection_unit_level_churn(self):
        """Interleave approvals and releases directly; the incremental
        counters and both maps must agree after every step."""
        module = RegistrationModule(max_gps_users=8, max_data_users=16)
        live = {}
        import random
        rng = random.Random(7)
        for step in range(400):
            if live and rng.random() < 0.45:
                uid = rng.choice(sorted(live))
                released = module.release(uid)
                assert released is not None
                assert released.ein == live.pop(uid)
            else:
                ein = 1000 + step
                service = SERVICE_GPS if rng.random() < 0.3 \
                    else SERVICE_DATA
                record = module.approve(ein, service, now=float(step))
                if record is not None:
                    assert record.uid not in live, \
                        "uid handed out twice"
                    live[record.uid] = ein
            module.check_invariants()
        assert module.active_gps + module.active_data == len(live)

    def test_bijection_check_catches_dangling_ein(self):
        module = RegistrationModule()
        record = module.approve(1234, SERVICE_DATA, now=0.0)
        del module._by_uid[record.uid]
        with pytest.raises(AssertionError):
            module.check_invariants()
