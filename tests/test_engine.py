"""Engine tests: spec execution, determinism, caching, hashing."""

import json

import pytest

from repro.core.config import CellConfig
from repro.engine import (
    ParallelExecutor,
    Point,
    ResultCache,
    RunSpec,
    SerialExecutor,
    canonical,
    cell_point,
    derive_seed,
    execute,
    get_executor,
    point_key,
    resolve_jobs,
    telemetry,
)
from repro.engine.spec import group_means, mean_of_summaries, \
    run_cell_summary

SMALL = dict(num_data_users=4, num_gps_users=1, cycles=40,
             warmup_cycles=8)


def small_spec(loads=(0.3, 0.9), seeds=(1, 2)) -> RunSpec:
    points = []
    for load in loads:
        for seed in seeds:
            config = CellConfig(load_index=load, seed=seed, **SMALL)
            points.append(cell_point(config, load=load, seed=seed))
    return RunSpec(name="test", points=tuple(points))


class TestExecutors:
    def test_get_executor_serial(self):
        assert isinstance(get_executor(1), SerialExecutor)
        assert isinstance(get_executor(None), SerialExecutor)
        assert isinstance(get_executor(3), ParallelExecutor)

    def test_resolve_jobs_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5
        assert resolve_jobs(2) == 2  # explicit wins
        monkeypatch.setenv("REPRO_JOBS", "garbage")
        assert resolve_jobs(None) == 1
        monkeypatch.delenv("REPRO_JOBS")
        assert resolve_jobs(None) == 1

    def test_parallel_executor_rejects_jobs_1(self):
        with pytest.raises(ValueError):
            ParallelExecutor(1)


class TestDeterminism:
    def test_serial_and_parallel_summaries_identical(self):
        spec = small_spec()
        serial = execute(spec, jobs=1, cache=False)
        parallel = execute(spec, jobs=2, cache=False)
        assert serial.values == parallel.values  # bit-identical floats
        assert parallel.stats.jobs == 2
        assert parallel.stats.executed == len(spec.points)

    def test_repeated_serial_runs_identical(self):
        spec = small_spec(loads=(0.5,), seeds=(3,))
        first = execute(spec, jobs=1, cache=False)
        second = execute(spec, jobs=1, cache=False)
        assert first.values == second.values


class TestCache:
    def test_warm_run_executes_nothing_and_matches(self, tmp_path):
        spec = small_spec()
        store = ResultCache(str(tmp_path))
        cold = execute(spec, cache=store)
        assert cold.stats.executed == len(spec.points)
        assert cold.stats.cache_hits == 0
        warm = execute(spec, cache=ResultCache(str(tmp_path)))
        assert warm.stats.executed == 0
        assert warm.stats.cache_hits == len(spec.points)
        assert warm.values == cold.values

    def test_config_change_invalidates(self, tmp_path):
        store = ResultCache(str(tmp_path))
        execute(small_spec(loads=(0.3,), seeds=(1,)), cache=store)
        changed = execute(small_spec(loads=(0.4,), seeds=(1,)),
                          cache=ResultCache(str(tmp_path)))
        assert changed.stats.executed == 1

    def test_cache_false_disables(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        execute(small_spec(loads=(0.3,), seeds=(1,)), cache=False)
        assert not list(tmp_path.glob("*.json"))

    def test_env_disables(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CACHE", "0")
        execute(small_spec(loads=(0.3,), seeds=(1,)), cache=None)
        assert not list(tmp_path.glob("*.json"))

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        spec = small_spec(loads=(0.3,), seeds=(1,))
        execute(spec, cache=ResultCache(str(tmp_path)))
        entry = next(tmp_path.glob("*.json"))
        entry.write_text("{not json")
        rerun = execute(spec, cache=ResultCache(str(tmp_path)))
        assert rerun.stats.executed == 1
        assert json.load(open(entry))  # rewritten with a valid value

    def test_clear(self, tmp_path):
        store = ResultCache(str(tmp_path))
        execute(small_spec(loads=(0.3,), seeds=(1,)), cache=store)
        assert store.clear() == 1
        assert not list(tmp_path.glob("*.json"))


class TestHashing:
    def test_point_key_stable_and_config_sensitive(self):
        config_a = CellConfig(load_index=0.3, seed=1, **SMALL)
        config_b = CellConfig(load_index=0.3, seed=1, **SMALL)
        config_c = CellConfig(load_index=0.3, seed=2, **SMALL)
        assert point_key(run_cell_summary, config_a) == \
            point_key(run_cell_summary, config_b)
        assert point_key(run_cell_summary, config_a) != \
            point_key(run_cell_summary, config_c)

    def test_canonical_shapes(self):
        config = CellConfig(load_index=0.3, seed=1, **SMALL)
        projected = canonical(config)
        assert projected[0].endswith("CellConfig")
        assert projected[1]["seed"] == 1
        assert canonical({"b": 2, "a": (1, 2)}) == {"a": [1, 2], "b": 2}
        assert canonical({1: "x"}) == {"1": "x"}

    def test_canonical_plain_object(self):
        from repro.phy.errors import IndependentSymbolErrors
        first = canonical(IndependentSymbolErrors(0.02))
        second = canonical(IndependentSymbolErrors(0.02))
        third = canonical(IndependentSymbolErrors(0.05))
        assert first == second
        assert first != third


class TestReduction:
    def test_mean_of_summaries_intersects_keys(self):
        merged = mean_of_summaries([{"a": 1.0, "b": 2.0, "extra": 9.0},
                                    {"a": 3.0, "b": 4.0}])
        assert merged == {"a": 2.0, "b": 3.0}
        assert mean_of_summaries([]) == {}

    def test_group_means_orders_and_labels(self):
        points = (Point(fn=len, config=None, label={"x": 1, "seed": 1}),
                  Point(fn=len, config=None, label={"x": 1, "seed": 2}),
                  Point(fn=len, config=None, label={"x": 2, "seed": 1}))
        values = [{"v": 1.0}, {"v": 3.0}, {"v": 5.0}]
        rows = group_means(values, points, by=("x",))
        assert rows == [{"v": 2.0, "x": 1}, {"v": 5.0, "x": 2}]


class TestSeeding:
    def test_derive_seed_deterministic_and_distinct(self):
        assert derive_seed(1, "load", 0.3) == derive_seed(1, "load", 0.3)
        assert derive_seed(1, "load", 0.3) != derive_seed(1, "load", 0.5)
        assert derive_seed(1, "load", 0.3) != derive_seed(2, "load", 0.3)


class TestTelemetry:
    def test_execute_records(self):
        telemetry.reset()
        execute(small_spec(loads=(0.3,), seeds=(1,)), cache=False)
        assert telemetry.total_points == 1
        assert telemetry.total_executed == 1
        line = telemetry.format()
        assert "1 points" in line and "points/s" in line
        telemetry.reset()
        assert telemetry.records == []


class TestSweepOnEngine:
    def test_sweep_loads_serial_vs_parallel(self):
        from repro.experiments.runner import sweep_loads
        kwargs = dict(loads=(0.3, 0.9), seeds=(1, 2), cache=False,
                      num_data_users=4, num_gps_users=1,
                      cycles=40, warmup_cycles=8)
        assert sweep_loads(jobs=1, **kwargs) == \
            sweep_loads(jobs=2, **kwargs)

    def test_experiment_cli_engine_flags(self, tmp_path, capsys,
                                         monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.experiments.__main__ import main
        assert main(["table1", "--quick", "--jobs", "2",
                     "--no-cache"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_sweep_cli_subcommand(self, capsys):
        from repro.cli import main
        code = main(["sweep", "--loads", "0.3", "--seeds", "1",
                     "--data-users", "4", "--gps-users", "1",
                     "--cycles", "40", "--warmup", "8", "--no-cache"])
        assert code == 0
        out = capsys.readouterr().out
        assert "rho=0.3" in out and "util=" in out
