"""maclint: rule detection, scoping, pragmas, baseline, CLI gate."""

import json

import pytest

from repro.lint import (
    check_source,
    fingerprint,
    load_baseline,
    parse_pragmas,
    partition,
    scope_for_path,
    write_baseline,
)
from repro.lint.checker import LintSyntaxError
from repro.lint.cli import main as lint_main
from repro.lint.rules import RULES

CORE_PATH = "src/repro/sim/fixture.py"
PHY_PATH = "src/repro/phy/fixture.py"
ENGINE_PATH = "src/repro/engine/fixture.py"
EXPERIMENTS_PATH = "src/repro/experiments/fixture.py"


def rules_of(report):
    return [finding.rule for finding in report.findings]


# -- DET family ----------------------------------------------------------------------


class TestDetRules:
    def test_det001_module_global_random(self):
        report = check_source(
            "import random\n"
            "def jitter():\n"
            "    return random.random()\n", CORE_PATH)
        assert rules_of(report) == ["DET001"]
        assert "sim.rng" in report.findings[0].message

    def test_det001_from_import(self):
        report = check_source(
            "from random import randint\n"
            "def pick():\n"
            "    return randint(0, 5)\n", CORE_PATH)
        assert rules_of(report) == ["DET001"]

    def test_det001_aliased_module(self):
        report = check_source(
            "import random as rnd\n"
            "x = rnd.choice([1, 2])\n", CORE_PATH)
        assert rules_of(report) == ["DET001"]

    def test_det002_wall_clock(self):
        report = check_source(
            "import time\n"
            "def stamp():\n"
            "    return time.time()\n", CORE_PATH)
        assert rules_of(report) == ["DET002"]

    def test_det002_datetime_now(self):
        report = check_source(
            "from datetime import datetime\n"
            "def stamp():\n"
            "    return datetime.now()\n", CORE_PATH)
        assert rules_of(report) == ["DET002"]

    def test_det003_direct_construction(self):
        report = check_source(
            "import random\n"
            "rng = random.Random(7)\n", CORE_PATH)
        assert rules_of(report) == ["DET003"]
        assert "RandomStreams" in report.findings[0].message

    def test_det004_set_iteration(self):
        report = check_source(
            "def schedule(uids):\n"
            "    for uid in set(uids):\n"
            "        grant(uid)\n", CORE_PATH)
        assert rules_of(report) == ["DET004"]

    def test_det004_set_literal_and_comprehension(self):
        report = check_source(
            "def build():\n"
            "    return [s for s in {3, 1, 2}]\n", CORE_PATH)
        assert rules_of(report) == ["DET004"]

    def test_det_negative_injected_rng(self):
        report = check_source(
            "def corrupt(codeword, rng):\n"
            "    return [s for s in codeword if rng.random() < 0.5]\n",
            CORE_PATH)
        assert rules_of(report) == []

    def test_det_negative_sorted_set(self):
        report = check_source(
            "def schedule(uids):\n"
            "    for uid in sorted(set(uids)):\n"
            "        grant(uid)\n", CORE_PATH)
        assert rules_of(report) == []

    def test_det_out_of_scope_in_experiments(self):
        # Experiment drivers may construct documented seeded RNGs.
        report = check_source(
            "import random\n"
            "rng = random.Random(1)\n", EXPERIMENTS_PATH)
        assert rules_of(report) == []

    def test_det_exempt_in_rng_module(self):
        report = check_source(
            "import random\n"
            "stream = random.Random(42)\n", "src/repro/sim/rng.py")
        assert rules_of(report) == []


# -- PAR family ----------------------------------------------------------------------


class TestParRules:
    def test_par001_global_statement(self):
        report = check_source(
            "_cache = None\n"
            "def set_cache(value):\n"
            "    global _cache\n"
            "    _cache = value\n", ENGINE_PATH)
        assert rules_of(report) == ["PAR001"]

    def test_par002_module_mutable_state(self):
        report = check_source(
            "pending = []\n", ENGINE_PATH)
        assert rules_of(report) == ["PAR002"]

    def test_par002_negative_constant_and_class_attr(self):
        report = check_source(
            "LOADS = (0.3, 0.8)\n"
            "PAPER_ROWS = [1, 2]\n"   # UPPER_CASE convention: constant
            "class Acc:\n"
            "    samples = []\n",     # class attribute, not module state
            ENGINE_PATH)
        assert rules_of(report) == []

    def test_par003_lambda_point(self):
        report = check_source(
            "def build(configs):\n"
            "    return [Point(fn=lambda c: c, config=c)\n"
            "            for c in configs]\n", EXPERIMENTS_PATH)
        assert rules_of(report) == ["PAR003"]

    def test_par003_nested_function_point(self):
        report = check_source(
            "def build(config):\n"
            "    def task(c):\n"
            "        return c\n"
            "    return Point(fn=task, config=config)\n",
            EXPERIMENTS_PATH)
        assert rules_of(report) == ["PAR003"]

    def test_par003_negative_module_level_fn(self):
        report = check_source(
            "def task(c):\n"
            "    return c\n"
            "def build(config):\n"
            "    return Point(fn=task, config=config)\n",
            EXPERIMENTS_PATH)
        assert rules_of(report) == []


# -- PROTO family --------------------------------------------------------------------


class TestProtoRules:
    def test_proto001_symbol_rate(self):
        report = check_source(
            "rate = 2400.0\n", ENGINE_PATH)
        assert rules_of(report) == ["PROTO001"]
        assert "REVERSE_SYMBOL_RATE" in report.findings[0].message

    def test_proto001_reverse_shift(self):
        report = check_source("delta = 0.30125\n", EXPERIMENTS_PATH)
        assert rules_of(report) == ["PROTO001"]
        assert "REVERSE_SHIFT" in report.findings[0].message

    def test_proto001_core_only_values(self):
        # 37 and 4.0 are ambiguous: flagged in the protocol core ...
        report = check_source("slots = 37\ndeadline = 4.0\n", CORE_PATH)
        assert rules_of(report) == ["PROTO001", "PROTO001"]
        # ... but not in outer layers, where small numbers are common.
        report = check_source("slots = 37\ndeadline = 4.0\n",
                              ENGINE_PATH)
        assert rules_of(report) == []

    def test_proto001_int_float_equivalence(self):
        report = check_source("a = 3200\nb = 3200.0\n", ENGINE_PATH)
        assert rules_of(report) == ["PROTO001", "PROTO001"]

    def test_proto001_exempt_in_timing(self):
        report = check_source(
            "FORWARD_SYMBOL_RATE = 3200.0\n",
            "src/repro/phy/timing.py")
        assert rules_of(report) == []

    def test_proto001_negative_unrelated_number(self):
        report = check_source("x = 4\ny = 0.5\nz = 2401\n", CORE_PATH)
        assert rules_of(report) == []


# -- HOT family ----------------------------------------------------------------------


class TestHotRules:
    def test_hot001_print(self):
        report = check_source(
            "def on_symbol(s):\n"
            "    print('sym', s)\n", PHY_PATH)
        assert rules_of(report) == ["HOT001"]

    def test_hot001_out_of_scope_in_cli(self):
        report = check_source(
            "def render():\n"
            "    print('table')\n", "src/repro/cli.py")
        assert rules_of(report) == []

    def test_hot002_open_in_loop(self):
        report = check_source(
            "def dump(events):\n"
            "    for event in events:\n"
            "        with open('log', 'a') as f:\n"
            "            f.write(str(event))\n", CORE_PATH)
        assert rules_of(report) == ["HOT002"]

    def test_hot002_negative_open_outside_loop(self):
        report = check_source(
            "def dump(events):\n"
            "    with open('log', 'w') as f:\n"
            "        for event in events:\n"
            "            f.write(str(event))\n", CORE_PATH)
        assert rules_of(report) == []


# -- pragmas -------------------------------------------------------------------------


class TestPragmas:
    def test_line_pragma_suppresses(self):
        report = check_source(
            "import random\n"
            "rng = random.Random(7)  # maclint: disable=DET003\n",
            CORE_PATH)
        assert rules_of(report) == []
        assert [f.rule for f in report.suppressed] == ["DET003"]

    def test_family_pragma(self):
        report = check_source(
            "import random\n"
            "x = random.random()  # maclint: disable=DET\n", CORE_PATH)
        assert rules_of(report) == []

    def test_file_pragma(self):
        report = check_source(
            "# maclint: disable-file=PROTO001\n"
            "a = 3200\n"
            "b = 2400\n", CORE_PATH)
        assert rules_of(report) == []
        assert len(report.suppressed) == 2

    def test_pragma_only_covers_its_line(self):
        report = check_source(
            "import random\n"
            "a = random.random()  # maclint: disable=DET001\n"
            "b = random.random()\n", CORE_PATH)
        assert rules_of(report) == ["DET001"]
        assert report.findings[0].line == 3

    def test_unknown_rule_reported(self):
        pragmas = parse_pragmas("x = 1  # maclint: disable=NOPE123\n")
        assert pragmas.errors and "NOPE123" in pragmas.errors[0]

    def test_pragma_inside_string_ignored(self):
        report = check_source(
            "doc = '# maclint: disable=DET001'\n"
            "import random\n"
            "x = random.random()\n", CORE_PATH)
        assert rules_of(report) == ["DET001"]


# -- baseline ------------------------------------------------------------------------


class TestBaseline:
    SOURCE = ("import random\n"
              "rng = random.Random(7)\n")

    def test_roundtrip_and_partition(self, tmp_path):
        report = check_source(self.SOURCE, CORE_PATH)
        baseline_file = tmp_path / "baseline.json"
        assert write_baseline(str(baseline_file), report.findings) == 1
        counts = load_baseline(str(baseline_file))
        new, grandfathered = partition(report.findings, counts)
        assert new == []
        assert len(grandfathered) == 1

    def test_new_finding_not_masked(self, tmp_path):
        report = check_source(self.SOURCE, CORE_PATH)
        baseline_file = tmp_path / "baseline.json"
        write_baseline(str(baseline_file), report.findings)
        grown = check_source(
            self.SOURCE + "other = random.Random(9)\n", CORE_PATH)
        new, grandfathered = partition(
            grown.findings, load_baseline(str(baseline_file)))
        assert len(grandfathered) == 1
        assert len(new) == 1
        assert "Random(9)" in new[0].text

    def test_fingerprint_survives_line_drift(self):
        before = check_source(self.SOURCE, CORE_PATH).findings[0]
        after = check_source("\n\n" + self.SOURCE, CORE_PATH).findings[0]
        assert before.line != after.line
        assert fingerprint(before) == fingerprint(after)

    def test_duplicate_occurrences_matched_as_multiset(self, tmp_path):
        source = ("import random\n"
                  "a = random.random()\n"
                  "b = random.random()\n")
        # both lines differ textually; identical-text duplicates:
        dup = ("import random\n"
               "x = random.random()\n")
        report = check_source(dup, CORE_PATH)
        baseline_file = tmp_path / "baseline.json"
        write_baseline(str(baseline_file), report.findings)
        grown = check_source(dup + "x = random.random()\n", CORE_PATH)
        new, grandfathered = partition(
            grown.findings, load_baseline(str(baseline_file)))
        assert len(grandfathered) == 1 and len(new) == 1
        del source


# -- scoping and errors --------------------------------------------------------------


class TestScoping:
    def test_scope_for_core_and_outer_packages(self):
        core = scope_for_path("src/repro/protocols/prma.py")
        assert core.det and core.hot and core.proto_core
        outer = scope_for_path("src/repro/engine/spec.py")
        assert not outer.det and not outer.hot
        assert outer.par and outer.proto and not outer.proto_core

    def test_hot_extra_modules_outside_core(self):
        # Designated hot-path modules in otherwise non-core packages
        # get the HOT family (and only the HOT family beyond the
        # outer-package default).
        profiler = scope_for_path("src/repro/obs/profiler.py")
        assert profiler.hot and not profiler.det
        registry = scope_for_path("src/repro/obs/registry.py")
        assert registry.hot
        stats = scope_for_path("src/repro/metrics/stats.py")
        assert stats.hot
        # The service-mode cycle loop is on the paced critical path.
        service = scope_for_path("src/repro/serve/service.py")
        assert service.hot and not service.det
        # Siblings in the same packages stay un-hot.
        render = scope_for_path("src/repro/obs/render.py")
        assert not render.hot
        fairness = scope_for_path("src/repro/metrics/fairness.py")
        assert not fairness.hot
        control = scope_for_path("src/repro/serve/control.py")
        assert not control.hot

    def test_new_kernel_modules_are_core_hot(self):
        # The fast-path modules added by the kernel refactor fall under
        # the core packages and pick up the full core treatment.
        intervals = scope_for_path("src/repro/phy/intervals.py")
        assert intervals.hot and intervals.det
        legacy = scope_for_path("src/repro/sim/legacy.py")
        assert legacy.hot and legacy.det

    def test_print_flagged_in_hot_extra_module(self):
        report = check_source("def sample(value):\n"
                              "    print(value)\n",
                              "src/repro/obs/profiler.py")
        assert [finding.rule for finding in report.findings] \
            == ["HOT001"]

    def test_lint_package_exempt(self):
        scope = scope_for_path("src/repro/lint/rules.py")
        assert not (scope.det or scope.par or scope.proto or scope.hot)

    def test_unscoped_path_gets_full_treatment(self):
        scope = scope_for_path("fixture.py")
        assert scope.det and scope.par and scope.proto and scope.hot

    def test_syntax_error_raises(self):
        with pytest.raises(LintSyntaxError):
            check_source("def broken(:\n", CORE_PATH)


# -- CLI end-to-end ------------------------------------------------------------------


class TestCli:
    def test_repo_passes_against_checked_in_baseline(self, capsys):
        exit_code = lint_main(["--json"])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert payload["schema"] == "repro/maclint@2"
        assert payload["ok"] is True
        assert payload["new"] == []
        assert payload["checked_files"] > 50
        # the three grandfathered parent-process singletons
        assert [f["rule"] for f in payload["baselined"]] \
            == ["PAR001", "PAR001", "PAR001"]

    @pytest.mark.parametrize("family,snippet", [
        ("DET", "import random\nx = random.Random(3)\n"),
        ("PAR", "shared = {}\n"),
        ("PROTO", "rate = 3200.0\n"),
        ("HOT", "def f(events):\n"
                "    for e in events:\n"
                "        print(e)\n"),
    ])
    def test_fixture_violation_fails_gate(self, tmp_path, capsys,
                                          family, snippet):
        fixture = tmp_path / "fixture.py"
        fixture.write_text(snippet)
        exit_code = lint_main([str(fixture), "--no-baseline",
                               "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 1
        families = {RULES[f["rule"]].family for f in payload["new"]}
        assert family in families

    def test_write_baseline_then_pass(self, tmp_path, capsys):
        fixture = tmp_path / "fixture.py"
        fixture.write_text("import random\nx = random.Random(3)\n")
        baseline = tmp_path / "base.json"
        assert lint_main([str(fixture), "--baseline",
                          str(baseline), "--write-baseline"]) == 0
        capsys.readouterr()
        assert lint_main([str(fixture), "--baseline",
                          str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out

    def test_pragma_error_exits_2(self, tmp_path, capsys):
        fixture = tmp_path / "fixture.py"
        fixture.write_text("x = 1  # maclint: disable=BOGUS9\n")
        assert lint_main([str(fixture), "--no-baseline"]) == 2
        assert "BOGUS9" in capsys.readouterr().err

    def test_syntax_error_exits_2(self, tmp_path, capsys):
        fixture = tmp_path / "fixture.py"
        fixture.write_text("def broken(:\n")
        assert lint_main([str(fixture), "--no-baseline"]) == 2

    def test_missing_path_exits_2(self, capsys):
        assert lint_main(["definitely/not/here.py"]) == 2

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules", "--json"]) == 0
        catalogue = json.loads(capsys.readouterr().out)
        assert set(catalogue) == set(RULES)
        for entry in catalogue.values():
            assert entry["family"] in ("DET", "PAR", "PROTO", "HOT",
                                       "FLOW")

    def test_via_repro_cli(self, capsys):
        from repro.cli import main as repro_main

        assert repro_main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "lint:" in out and "ok" in out
