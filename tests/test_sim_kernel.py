"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    RandomStreams,
    Resource,
    Simulator,
    SimulationError,
    Store,
    Timeout,
)


class TestEvents:
    def test_event_lifecycle(self):
        sim = Simulator()
        event = sim.event()
        assert not event.triggered
        assert not event.processed
        event.succeed(42)
        assert event.triggered
        assert event.value == 42
        assert event.ok
        sim.run()
        assert event.processed

    def test_event_fail_carries_exception(self):
        sim = Simulator()
        event = sim.event()
        error = RuntimeError("boom")
        event.fail(error)
        assert event.triggered
        assert not event.ok
        assert event.value is error

    def test_double_trigger_rejected(self):
        sim = Simulator()
        event = sim.event()
        event.succeed()
        with pytest.raises(RuntimeError):
            event.succeed()
        with pytest.raises(RuntimeError):
            event.fail(ValueError("x"))

    def test_fail_requires_exception_instance(self):
        sim = Simulator()
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_value_before_trigger_raises(self):
        sim = Simulator()
        with pytest.raises(AttributeError):
            _ = sim.event().value

    def test_callback_after_processing_runs_immediately(self):
        sim = Simulator()
        event = sim.event()
        event.succeed("x")
        sim.run()
        seen = []
        event.add_callback(lambda ev: seen.append(ev.value))
        assert seen == ["x"]

    def test_timeout_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Timeout(sim, -1.0)


class TestClock:
    def test_timeout_advances_clock(self):
        sim = Simulator()
        sim.timeout(2.5)
        sim.run()
        assert sim.now == 2.5

    def test_run_until_advances_to_exact_time(self):
        sim = Simulator()
        sim.timeout(1.0)
        sim.run(until=5.0)
        assert sim.now == 5.0

    def test_run_until_does_not_process_later_events(self):
        sim = Simulator()
        fired = []
        sim.timeout(1.0).add_callback(lambda ev: fired.append(1))
        sim.timeout(10.0).add_callback(lambda ev: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]

    def test_run_until_in_past_rejected(self):
        sim = Simulator()
        sim.timeout(1.0)
        sim.run()
        with pytest.raises(SimulationError):
            sim.run(until=0.5)

    def test_same_time_events_fifo(self):
        sim = Simulator()
        order = []
        for index in range(5):
            sim.timeout(1.0).add_callback(
                lambda ev, i=index: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_call_at(self):
        sim = Simulator()
        fired = []
        sim.call_at(3.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [3.0]

    def test_call_at_past_rejected(self):
        sim = Simulator()
        sim.timeout(1.0)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(0.0, lambda: None)

    def test_peek(self):
        sim = Simulator()
        assert sim.peek() == float("inf")
        sim.timeout(4.0)
        assert sim.peek() == 4.0


class TestProcesses:
    def test_process_waits_on_timeouts(self):
        sim = Simulator()
        trace = []

        def worker():
            trace.append(sim.now)
            yield sim.timeout(1.0)
            trace.append(sim.now)
            yield sim.timeout(2.0)
            trace.append(sim.now)

        sim.process(worker())
        sim.run()
        assert trace == [0.0, 1.0, 3.0]

    def test_process_return_value(self):
        sim = Simulator()

        def worker():
            yield sim.timeout(1.0)
            return "done"

        proc = sim.process(worker())
        result = sim.run_process(proc)
        assert result == "done"

    def test_process_receives_event_value(self):
        sim = Simulator()
        event = sim.event()

        def worker():
            value = yield event
            return value

        proc = sim.process(worker())
        sim.call_at(1.0, lambda: event.succeed("payload"))
        assert sim.run_process(proc) == "payload"

    def test_process_is_event_awaitable_by_other_process(self):
        sim = Simulator()

        def inner():
            yield sim.timeout(2.0)
            return 7

        def outer():
            value = yield sim.process(inner())
            return value * 2

        assert sim.run_process(sim.process(outer())) == 14

    def test_exception_propagates_in_strict_mode(self):
        sim = Simulator(strict=True)

        def worker():
            yield sim.timeout(1.0)
            raise ValueError("kaboom")

        sim.process(worker())
        with pytest.raises(ValueError, match="kaboom"):
            sim.run()

    def test_exception_becomes_failure_in_lenient_mode(self):
        sim = Simulator(strict=False)

        def failing():
            yield sim.timeout(1.0)
            raise ValueError("kaboom")

        def watcher():
            try:
                yield sim.process(failing())
            except ValueError as exc:
                return f"caught {exc}"

        assert sim.run_process(sim.process(watcher())) == "caught kaboom"

    def test_interrupt(self):
        sim = Simulator()

        def sleeper():
            try:
                yield sim.timeout(100.0)
                return "slept"
            except Interrupt as interrupt:
                return f"interrupted:{interrupt.cause}"

        proc = sim.process(sleeper())
        sim.call_at(1.0, lambda: proc.interrupt("alarm"))
        assert sim.run_process(proc) == "interrupted:alarm"
        assert sim.now == 1.0

    def test_interrupt_finished_process_rejected(self):
        sim = Simulator()

        def quick():
            yield sim.timeout(0.5)

        proc = sim.process(quick())
        sim.run()
        with pytest.raises(SimulationError):
            proc.interrupt()

    def test_yield_non_event_rejected(self):
        sim = Simulator()

        def bad():
            yield 42

        sim.process(bad())
        with pytest.raises(SimulationError):
            sim.run()

    def test_non_generator_rejected(self):
        sim = Simulator()
        with pytest.raises(TypeError):
            sim.process(lambda: None)

    def test_run_process_detects_drained_queue(self):
        sim = Simulator()
        event = sim.event()  # never triggered

        def stuck():
            yield event

        proc = sim.process(stuck())
        with pytest.raises(SimulationError):
            sim.run_process(proc)


class TestConditions:
    def test_anyof_fires_on_first(self):
        sim = Simulator()
        fast = sim.timeout(1.0, value="fast")
        slow = sim.timeout(5.0, value="slow")

        def waiter():
            result = yield AnyOf(sim, [fast, slow])
            return result

        result = sim.run_process(sim.process(waiter()))
        assert result == {fast: "fast"}
        assert sim.now == 1.0

    def test_allof_waits_for_all(self):
        sim = Simulator()
        first = sim.timeout(1.0, value=1)
        second = sim.timeout(5.0, value=2)

        def waiter():
            result = yield AllOf(sim, [first, second])
            return result

        result = sim.run_process(sim.process(waiter()))
        assert result == {first: 1, second: 2}
        assert sim.now == 5.0

    def test_empty_condition_fires_immediately(self):
        sim = Simulator()
        condition = AllOf(sim, [])
        sim.run()
        assert condition.processed
        assert condition.value == {}

    def test_allof_fails_on_child_failure(self):
        sim = Simulator()
        good = sim.timeout(1.0)
        bad = sim.event()
        sim.call_at(0.5, lambda: bad.fail(RuntimeError("child died")))

        def waiter():
            try:
                yield AllOf(sim, [good, bad])
            except RuntimeError as exc:
                return str(exc)

        assert sim.run_process(sim.process(waiter())) == "child died"


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)

        def producer():
            yield store.put("a")
            yield store.put("b")

        def consumer():
            first = yield store.get()
            second = yield store.get()
            return [first, second]

        sim.process(producer())
        proc = sim.process(consumer())
        assert sim.run_process(proc) == ["a", "b"]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        times = []

        def consumer():
            item = yield store.get()
            times.append((sim.now, item))

        def producer():
            yield sim.timeout(3.0)
            yield store.put("late")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert times == [(3.0, "late")]

    def test_bounded_capacity_blocks_put(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        progress = []

        def producer():
            yield store.put(1)
            progress.append(("put1", sim.now))
            yield store.put(2)
            progress.append(("put2", sim.now))

        def consumer():
            yield sim.timeout(5.0)
            item = yield store.get()
            progress.append(("got", item, sim.now))

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert ("put1", 0.0) in progress
        assert ("put2", 5.0) in progress

    def test_try_get_and_try_put(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        assert store.try_get() is None
        assert store.try_put("x")
        assert not store.try_put("y")
        sim.run()
        assert store.try_get() == "x"

    def test_invalid_capacity(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Store(sim, capacity=0)


class TestResource:
    def test_mutual_exclusion(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        holds = []

        def worker(name, hold):
            request = resource.request()
            yield request
            holds.append((name, "in", sim.now))
            yield sim.timeout(hold)
            holds.append((name, "out", sim.now))
            resource.release()

        sim.process(worker("a", 2.0))
        sim.process(worker("b", 1.0))
        sim.run()
        assert holds == [("a", "in", 0.0), ("a", "out", 2.0),
                         ("b", "in", 2.0), ("b", "out", 3.0)]

    def test_capacity_two_admits_two(self):
        sim = Simulator()
        resource = Resource(sim, capacity=2)
        entered = []

        def worker(name):
            yield resource.request()
            entered.append((name, sim.now))
            yield sim.timeout(1.0)
            resource.release()

        for name in "abc":
            sim.process(worker(name))
        sim.run()
        assert entered == [("a", 0.0), ("b", 0.0), ("c", 1.0)]

    def test_release_without_request_rejected(self):
        sim = Simulator()
        resource = Resource(sim)
        with pytest.raises(RuntimeError):
            resource.release()

    def test_cancel_pending_request(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        first = resource.request()
        second = resource.request()
        assert resource.cancel(second)
        assert not resource.cancel(first)  # already granted


class TestRandomStreams:
    def test_streams_reproducible(self):
        a = RandomStreams(7).stream("x").random()
        b = RandomStreams(7).stream("x").random()
        assert a == b

    def test_streams_independent_by_name(self):
        streams = RandomStreams(7)
        assert streams["x"].random() != streams["y"].random()

    def test_same_name_returns_same_stream(self):
        streams = RandomStreams(7)
        assert streams.stream("x") is streams.stream("x")

    def test_different_seeds_differ(self):
        assert (RandomStreams(1).stream("x").random()
                != RandomStreams(2).stream("x").random())

    def test_spawn_child_independent(self):
        parent = RandomStreams(7)
        child = parent.spawn("child")
        assert parent.stream("x").random() != child.stream("x").random()
