"""Tests for the CLI entry points and configuration validation."""

import json

import pytest

from repro.cli import main as cli_main
from repro.core.config import CellConfig
from repro.experiments.__main__ import main as experiments_main


class TestCellConfigValidation:
    def test_defaults_valid(self):
        config = CellConfig()
        assert config.data_slots_per_cycle in (8, 9)
        assert config.duration > 0

    def test_bad_population(self):
        with pytest.raises(ValueError):
            CellConfig(num_data_users=-1)
        with pytest.raises(ValueError):
            CellConfig(num_gps_users=9)

    def test_bad_message_size(self):
        with pytest.raises(ValueError):
            CellConfig(message_size="pareto")

    def test_warmup_must_precede_end(self):
        with pytest.raises(ValueError):
            CellConfig(cycles=10, warmup_cycles=10)

    def test_contention_floor(self):
        with pytest.raises(ValueError):
            CellConfig(min_contention_slots=0)

    def test_data_slots_depend_on_gps_and_adjustment(self):
        assert CellConfig(num_gps_users=2).data_slots_per_cycle == 9
        assert CellConfig(num_gps_users=4).data_slots_per_cycle == 8
        assert CellConfig(num_gps_users=2,
                          dynamic_slot_adjustment=False
                          ).data_slots_per_cycle == 8

    def test_derived_times(self):
        config = CellConfig(cycles=100, warmup_cycles=10)
        assert config.duration == pytest.approx(100 * 3.984375)
        assert config.warmup_until == pytest.approx(10 * 3.984375)


class TestCli:
    def test_run_json(self, capsys):
        code = cli_main(["run", "--load", "0.5", "--cycles", "40",
                         "--warmup", "8", "--data-users", "4",
                         "--gps-users", "1", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["radio_violations"] == 0
        assert payload["utilization"] > 0.2

    def test_run_human_readable(self, capsys):
        code = cli_main(["run", "--cycles", "40", "--warmup", "8",
                         "--data-users", "4", "--gps-users", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "utilization" in out
        assert "registrations" in out

    def test_run_with_options(self, capsys):
        code = cli_main(["run", "--cycles", "40", "--warmup", "8",
                         "--data-users", "4", "--gps-users", "1",
                         "--no-second-cf", "--no-dynamic-adjustment",
                         "--error-model", "outage",
                         "--outage-loss", "0.02", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["second_cf_gain"] == 0.0

    def test_network_command(self, capsys):
        code = cli_main(["network", "--cells", "2", "--cycles", "50",
                         "--warmup", "10", "--data-users", "3",
                         "--gps-users", "1", "--handoffs", "1",
                         "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["handoffs_completed"] == 1
        assert len(payload["cells"]) == 2

    def test_experiments_subcommand_list(self, capsys):
        code = cli_main(["experiments", "--list"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig8a" in out
        assert "table2" in out


class TestExperimentsCli:
    def test_list(self, capsys):
        assert experiments_main(["--list"]) == 0
        names = capsys.readouterr().out.split()
        assert {"table1", "table2", "fig8a", "fig8b", "fig9", "fig10",
                "fig11", "fig12a", "fig12b", "registration", "gps",
                "baselines", "ablation",
                "calibration"} <= set(names)

    def test_unknown_experiment(self, capsys):
        assert experiments_main(["does-not-exist"]) == 2

    def test_run_table_experiments(self, capsys):
        assert experiments_main(["table1", "table2", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "all derived values match" in out
        assert "Reverse channel access times" in out
