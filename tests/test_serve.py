"""Service mode (`repro serve`): journals, resume, supervision, HTTP.

The acceptance scenario at the bottom is the PR's headline: a soak is
SIGKILLed mid-run, ``repro serve --resume`` replays the journal, the
control plane reports ready, the invariant monitor stays clean for the
stabilization window, and every exported counter is monotonic across
the restart boundary.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.cell import build_cell
from repro.core.config import CellConfig
from repro.engine.checkpoint import (
    JournalLock,
    JournalLockedError,
    SweepJournal,
)
from repro.phy import timing
from repro.serve import (
    AdmissionController,
    CellService,
    DegradedError,
    ResumeIntegrityError,
    ServeConfig,
    ServiceError,
    ServiceJournal,
    Supervisor,
    assess,
)
from repro.serve.control import ControlServer
from repro.serve.service import RUNNING, STOPPED

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def small_cell(**overrides) -> CellConfig:
    defaults = dict(num_data_users=4, num_gps_users=2, load_index=0.5,
                    liveness_lease_cycles=6, seed=11,
                    eviction_backoff_jitter_cycles=2)
    defaults.update(overrides)
    return CellConfig(**defaults)


def serve_config(tmp_path, **overrides) -> ServeConfig:
    defaults = dict(name="t", journal_root=str(tmp_path),
                    cycle_period_s=0.0, stall_timeout_s=30.0)
    defaults.update(overrides)
    return ServeConfig(**defaults)


# -- journal locking (satellite: double-resume protection) -----------------


class TestJournalLock:
    def test_acquire_release_roundtrip(self, tmp_path):
        lock = JournalLock(str(tmp_path / "a.lock"))
        lock.acquire()
        assert lock.held
        assert os.path.exists(lock.path)
        lock.release()
        assert not lock.held
        assert not os.path.exists(lock.path)

    def test_live_foreign_pid_blocks(self, tmp_path):
        path = str(tmp_path / "a.lock")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("1\n")  # pid 1 is alive in any container
        with pytest.raises(JournalLockedError):
            JournalLock(path).acquire()

    def test_stale_pid_is_stolen(self, tmp_path):
        # A subprocess that already exited leaves a genuinely dead pid.
        probe = subprocess.Popen([sys.executable, "-c", "pass"])
        probe.wait()
        path = str(tmp_path / "a.lock")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(f"{probe.pid}\n")
        lock = JournalLock(path)
        lock.acquire()  # steals the stale lock instead of raising
        assert lock.held
        lock.release()

    def test_same_pid_reacquires(self, tmp_path):
        """Watchdog takeover: the replacement service shares our pid."""
        path = str(tmp_path / "a.lock")
        first = JournalLock(path)
        first.acquire()
        second = JournalLock(path)
        second.acquire()
        assert second.held
        second.release()

    def test_sweep_journal_lock_conflict(self, tmp_path):
        keys = ["k1", "k2"]
        journal = SweepJournal("locked", keys, root=str(tmp_path))
        journal.acquire()
        journal.append("k1", {"v": 1})
        with open(journal.lock.path, "w", encoding="utf-8") as handle:
            handle.write("1\n")  # simulate another live owner
        other = SweepJournal("locked", keys, root=str(tmp_path))
        with pytest.raises(JournalLockedError):
            other.acquire()
        os.unlink(journal.lock.path)

    def test_sweep_journal_truncated_mid_record_tail(self, tmp_path):
        keys = ["k1", "k2", "k3"]
        journal = SweepJournal("torn2", keys, root=str(tmp_path))
        journal.append("k1", {"v": 1})
        journal.append("k2", {"v": 2})
        journal.close()
        # SIGKILL mid-write: chop the last record in half.
        with open(journal.path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        with open(journal.path, "w", encoding="utf-8") as handle:
            handle.writelines(lines[:-1])
            handle.write(lines[-1][:len(lines[-1]) // 2])
        loaded = SweepJournal("torn2", keys, root=str(tmp_path)).load()
        assert loaded == {"k1": {"v": 1}}


# -- the service journal ----------------------------------------------------


class TestServiceJournal:
    def test_roundtrip(self, tmp_path):
        journal = ServiceJournal("cell", root=str(tmp_path))
        journal.acquire()
        journal.write_header("sha", {"cfg": 1}, {"serve": 2})
        journal.append_control(0, {"op": "load", "factor": 2.0})
        journal.append_snapshot(1, {"a": 1}, {"joins_data": 0})
        journal.append_control(3, {"op": "join", "service": "data"})
        journal.append_event("resumed", 3)
        journal.close()

        log = ServiceJournal("cell", root=str(tmp_path)).load()
        assert log.header["config_sha256"] == "sha"
        assert [op["cycle"] for op in log.ops] == [0, 3]
        assert log.snapshot_cycle == 1
        assert log.resume_cycle == 3  # ops pin state past the snapshot
        assert not log.clean_shutdown

    def test_clean_shutdown_flag(self, tmp_path):
        journal = ServiceJournal("cell", root=str(tmp_path))
        journal.write_header("sha", {}, {})
        journal.append_snapshot(5, {}, {})
        journal.append_event("shutdown", 5, clean=True)
        journal.close()
        assert ServiceJournal("cell",
                              root=str(tmp_path)).load().clean_shutdown

    def test_torn_tail_tolerated(self, tmp_path):
        journal = ServiceJournal("cell", root=str(tmp_path))
        journal.write_header("sha", {}, {})
        journal.append_snapshot(2, {"a": 1}, {})
        journal.close()
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "snapshot", "cycle": 3, "co')
        log = ServiceJournal("cell", root=str(tmp_path)).load()
        assert log.snapshot_cycle == 2  # the torn record is ignored


# -- admission control -------------------------------------------------------


class TestAdmission:
    def test_hysteresis(self):
        ctl = AdmissionController(lag_budget_s=1.0, lag_recover_s=0.25)
        assert ctl.update(0.5) is None
        assert ctl.update(1.5) is True  # enter
        assert ctl.update(0.5) is None  # inside the hysteresis band
        assert ctl.update(0.1) is False  # exit
        assert ctl.update(0.1) is None
        assert ctl.transitions == 2
        assert ctl.worst_lag_s == 1.5

    def test_negative_lag_clamped(self):
        ctl = AdmissionController(lag_budget_s=1.0, lag_recover_s=0.25)
        assert ctl.update(-5.0) is None
        assert ctl.worst_lag_s == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(lag_budget_s=0.0, lag_recover_s=0.0)
        with pytest.raises(ValueError):
            AdmissionController(lag_budget_s=1.0, lag_recover_s=2.0)


# -- self-stabilization verdicts --------------------------------------------


class TestStabilize:
    def _history(self, rows):
        return [{"cycle": cycle, "invariant_violations": violations,
                 "gps_min_margin_s": margin}
                for cycle, violations, margin in rows]

    def test_converges_within_window(self):
        history = self._history([
            (10, 2, -1.0), (11, 1, -0.5), (12, 0, 0.5), (13, 0, 1.0),
            (14, 0, 1.2), (15, 0, 1.2), (16, 0, 1.2), (17, 0, 1.2),
            (18, 0, 1.2), (19, 0, 1.2), (20, 0, 1.2),
        ])
        report = assess(history, burst_end_cycle=10, window=10)
        assert report["converged_cycle"] == 12
        assert report["cycles_to_converge"] == 2
        assert report["gps_reacquired_cycle"] == 12
        assert report["ok"] is True
        assert report["final"] is True

    def test_relapse_resets_convergence(self):
        history = self._history([
            (10, 0, 1.0), (11, 0, 1.0), (12, 3, 1.0), (13, 0, 1.0),
        ])
        report = assess(history, burst_end_cycle=10, window=10)
        assert report["converged_cycle"] == 13
        assert report["final"] is False  # window not yet observed

    def test_never_converges(self):
        history = self._history([(c, 1, 1.0) for c in range(10, 25)])
        report = assess(history, burst_end_cycle=10, window=10)
        assert report["converged_cycle"] is None
        assert report["ok"] is False
        assert report["final"] is True

    def test_gps_catchup_gap_tolerated(self):
        # The single catch-up report spanning the outage misses its
        # deadline; re-acquisition counts from the next clean cycle.
        history = self._history([
            (10, 0, None), (11, 0, -3.0), (12, 0, 0.2), (13, 0, 1.0),
        ])
        report = assess(history, burst_end_cycle=10, window=10)
        assert report["gps_reacquired_cycle"] == 12

    def test_empty_history(self):
        report = assess([], burst_end_cycle=5, window=10)
        assert report["observed_until"] is None
        assert report["ok"] is False


# -- one supervised cell ------------------------------------------------------


class TestCellService:
    def test_fresh_start_journals_header_and_snapshots(self, tmp_path):
        svc = CellService("cell0", small_cell(),
                          serve_config(tmp_path))
        svc.start(resume=False)
        for _ in range(3):
            svc.step_cycle()
        svc.shutdown(clean=True)
        log = svc.journal.load()
        assert log.header["schema"].startswith("repro/serve-journal")
        assert log.header["config_sha256"] == svc.config_sha256
        assert log.snapshot_cycle == 3
        assert log.clean_shutdown
        assert svc.state == STOPPED

    def test_control_ops_apply_at_boundaries(self, tmp_path):
        svc = CellService("cell0", small_cell(),
                          serve_config(tmp_path))
        svc.start(resume=False)
        base = svc.run.sources[0].mean_interarrival
        svc.enqueue_load(2.0)
        svc.enqueue_join("data")
        svc.enqueue_join("gps")
        for _ in range(4):
            svc.step_cycle()
        assert svc.run.sources[0].mean_interarrival == base / 2.0
        assert len(svc.run.data_users) == 5
        assert len(svc.run.gps_units) == 3
        assert svc.run.data_users[-1].name == "data-4"
        assert svc.counters["joins_data"] == 1
        assert svc.counters["joins_gps"] == 1
        # Ops landed in the journal with the cycle they preceded.
        ops = svc.journal.load().ops
        assert {op["op"]["op"] for op in ops} == {"load", "join"}
        assert all(op["cycle"] == 0 for op in ops)
        svc.shutdown()

    def test_leave_powers_subscriber_off(self, tmp_path):
        svc = CellService("cell0", small_cell(),
                          serve_config(tmp_path))
        svc.start(resume=False)
        for _ in range(3):
            svc.step_cycle()
        svc.enqueue_leave("data-1")
        svc.step_cycle()
        victim = svc.run.data_users[1]
        assert not victim.alive
        assert svc.counters["leaves"] == 1
        with pytest.raises(ServiceError):
            svc.enqueue_leave("data-99")
        svc.shutdown()

    def test_join_capacity_guard(self, tmp_path):
        svc = CellService("cell0", small_cell(num_gps_users=8),
                          serve_config(tmp_path))
        svc.start(resume=False)
        with pytest.raises(ServiceError):
            svc.enqueue_join("gps")  # protocol max is 8
        with pytest.raises(ServiceError):
            svc.enqueue_join("modem")  # unknown service class
        svc.shutdown()

    def test_degradation_sheds_joins_and_throttles_data(self, tmp_path):
        svc = CellService("cell0", small_cell(),
                          serve_config(tmp_path, lag_budget_s=1.0,
                                       lag_recover_s=0.25,
                                       degrade_factor=0.25))
        svc.start(resume=False)
        base = svc.run.sources[0].mean_interarrival
        svc.note_lag(2.0)  # over budget -> degrade op enqueued
        svc.step_cycle()
        assert svc.degraded
        assert svc.admission.degraded
        # Non-GPS sources throttled by 1/degrade_factor; GPS units have
        # no Poisson source to throttle -- their reporting is untouched.
        assert svc.run.sources[0].mean_interarrival == base / 0.25
        with pytest.raises(DegradedError):
            svc.enqueue_join("data")
        assert svc.counters["joins_shed"] == 1
        svc.note_lag(0.0)  # recovered -> exit op enqueued
        svc.step_cycle()
        assert not svc.degraded
        assert svc.run.sources[0].mean_interarrival == base
        assert svc.counters["degrade_transitions"] == 2
        # Both transitions were journaled for deterministic replay.
        kinds = [op["op"]["op"] for op in svc.journal.load().ops]
        assert kinds.count("degrade") == 2
        svc.shutdown()

    def test_stabilize_probe_reports_recovery(self, tmp_path):
        svc = CellService("cell0", small_cell(),
                          serve_config(tmp_path))
        svc.start(resume=False)
        for _ in range(3):
            svc.step_cycle()
        svc.enqueue_faults("crash:data-0@1;restart:data-0@3;"
                           "cf_storm:*@1+2", probe=True, window=10)
        for _ in range(16):
            svc.step_cycle()
        report = svc.probe["report"]
        assert report["final"], report
        assert report["ok"], report
        assert report["cycles_to_converge"] <= 10
        assert report["cycles_to_gps"] <= 10
        svc.shutdown()


# -- resume: replay + verification -------------------------------------------


class TestResume:
    def _soak(self, tmp_path, cycles_after=12):
        svc = CellService("cell0", small_cell(),
                          serve_config(tmp_path))
        svc.start(resume=False)
        for _ in range(4):
            svc.step_cycle()
        svc.enqueue_join("data")
        svc.enqueue_load(1.5)
        svc.enqueue_faults("crash:data-0@1;restart:data-0@3")
        for _ in range(cycles_after):
            svc.step_cycle()
        return svc

    def test_replay_restores_identical_state(self, tmp_path):
        svc = self._soak(tmp_path)
        expected_sim = svc._sim_counters()
        expected_serve = dict(svc.counters)
        cycle = svc.cycle
        svc.journal.lock.release()  # the process "died"

        resumed = CellService("cell0", small_cell(),
                              serve_config(tmp_path))
        resumed.start(resume=True)
        assert resumed.cycle == cycle
        assert resumed._sim_counters() == expected_sim
        assert resumed.counters == expected_serve
        assert resumed.state == RUNNING
        assert resumed.run.data_users[-1].name == "data-4"
        # Post-resume cycles stay invariant-clean (self-stabilization).
        before = resumed.run.stats.invariant_violations
        for _ in range(10):
            resumed.step_cycle()
        assert resumed.run.stats.invariant_violations == before
        assert resumed.status()["resume_clean"] is True
        resumed.shutdown()

    def test_resume_after_torn_tail(self, tmp_path):
        svc = self._soak(tmp_path)
        svc.journal.lock.release()
        with open(svc.journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "snapshot", "cycle": 99')  # torn
        resumed = CellService("cell0", small_cell(),
                              serve_config(tmp_path))
        resumed.start(resume=True)
        assert resumed.cycle == svc.cycle
        resumed.shutdown()

    def test_resume_refuses_foreign_config(self, tmp_path):
        svc = self._soak(tmp_path, cycles_after=2)
        svc.journal.lock.release()
        imposter = CellService("cell0", small_cell(seed=99),
                               serve_config(tmp_path))
        with pytest.raises(ServiceError, match="different cell config"):
            imposter.start(resume=True)

    def test_resume_detects_snapshot_divergence(self, tmp_path):
        svc = self._soak(tmp_path, cycles_after=2)
        svc.journal.lock.release()
        # Corrupt the journal's last snapshot: claim one more uplink
        # transmission than the deterministic replay will produce.
        with open(svc.journal.path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        for index in range(len(lines) - 1, -1, -1):
            record = json.loads(lines[index])
            if record["kind"] == "snapshot":
                record["counters"]["uplink_transmissions"] += 1
                lines[index] = json.dumps(record) + "\n"
                break
        with open(svc.journal.path, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
        resumed = CellService("cell0", small_cell(),
                              serve_config(tmp_path))
        with pytest.raises(ResumeIntegrityError, match="diverged"):
            resumed.start(resume=True)

    def test_double_resume_blocked_by_live_lock(self, tmp_path):
        svc = self._soak(tmp_path, cycles_after=2)
        # Fake a *different* live process holding the journal.
        with open(svc.journal.lock.path, "w",
                  encoding="utf-8") as handle:
            handle.write("1\n")
        rival = CellService("cell0", small_cell(),
                            serve_config(tmp_path))
        with pytest.raises(JournalLockedError):
            rival.start(resume=True)
        os.unlink(svc.journal.lock.path)


# -- seeded re-registration jitter (satellite) --------------------------------


class TestEvictionBackoffJitter:
    def test_jittered_run_is_bit_identical(self):
        from repro.faults.schedule import cf_storm

        # A CF storm longer than the lease evicts every live
        # subscriber; their eviction detections all draw jittered
        # backoffs, which must come from the seeded streams.
        config = small_cell(cycles=60, warmup_cycles=10,
                            faults=(cf_storm(15, 8),))
        first = build_cell(config)
        first.sim.run(until=config.duration)
        second = build_cell(config)
        second.sim.run(until=config.duration)
        assert first.stats.summary() == second.stats.summary()
        assert first.stats.evictions_detected > 0

    def test_jitter_window_is_bounded_whole_cycles(self):
        config = small_cell(cycles=40, warmup_cycles=5,
                            eviction_backoff_jitter_cycles=3)
        run = build_cell(config)
        run.sim.run(until=10 * timing.CYCLE_LENGTH)
        sub = run.data_users[0]
        seen = set()
        for _ in range(40):
            sub.state = "active"
            sub._suspect_eviction()
            delta = sub._reregister_not_before - run.sim.now
            cycles = delta / timing.CYCLE_LENGTH
            assert abs(cycles - round(cycles)) < 1e-9
            assert 0 <= round(cycles) <= 3
            seen.add(round(cycles))
        assert seen == {0, 1, 2, 3}  # the whole window is reachable

    def test_crash_clears_pending_backoff(self):
        config = small_cell(cycles=40, warmup_cycles=5,
                            eviction_backoff_jitter_cycles=3)
        run = build_cell(config)
        run.sim.run(until=10 * timing.CYCLE_LENGTH)
        sub = run.data_users[0]
        sub.state = "active"
        while True:
            sub._suspect_eviction()
            if sub._reregister_not_before > run.sim.now:
                break
            sub.state = "active"
        sub.crash()
        assert sub._reregister_not_before == 0.0

    def test_zero_jitter_means_no_wait(self):
        config = small_cell(cycles=40, warmup_cycles=5,
                            eviction_backoff_jitter_cycles=0)
        run = build_cell(config)
        run.sim.run(until=10 * timing.CYCLE_LENGTH)
        sub = run.data_users[0]
        sub.state = "active"
        sub._suspect_eviction()
        assert sub._reregister_not_before == 0.0


# -- the supervisor -----------------------------------------------------------


class TestSupervisor:
    def test_runs_to_max_cycles_and_drains(self, tmp_path):
        sup = Supervisor(serve_config(tmp_path, cells=2, max_cycles=8),
                         small_cell())
        sup.start()
        code = sup.run()
        sup.join(timeout=10.0)
        assert code == 0
        for name in ("cell0", "cell1"):
            cell = sup.cells[name]
            assert cell.state == STOPPED
            assert cell.cycle == 8
            log = ServiceJournal(f"t-{name}",
                                 root=str(tmp_path)).load()
            assert log.clean_shutdown
            assert log.snapshot_cycle == 8
        # Independent cells were decorrelated by seed.
        assert sup.cells["cell0"].cell_config.seed != \
            sup.cells["cell1"].cell_config.seed

    def test_watchdog_restarts_stalled_cell(self, tmp_path):
        sup = Supervisor(
            serve_config(tmp_path, cycle_period_s=0.005,
                         stall_timeout_s=0.4, max_restarts=3),
            small_cell())
        sup.start()
        runner = threading.Thread(target=sup.run, daemon=True)
        runner.start()
        deadline = time.monotonic() + 20.0
        while not sup.ready and time.monotonic() < deadline:
            time.sleep(0.01)
        assert sup.ready
        first = sup.cells["cell0"]
        cycle_before = first.cycle
        first.request_stall(30.0)  # wedge the worker well past timeout
        while sup.cells["cell0"] is first \
                and time.monotonic() < deadline:
            time.sleep(0.02)
        replacement = sup.cells["cell0"]
        assert replacement is not first, "watchdog never fired"
        assert first.cancelled.is_set()
        while not replacement.ready and time.monotonic() < deadline:
            time.sleep(0.02)
        assert replacement.ready
        # The replacement resumed from the journal, not from zero.
        assert replacement.cycle >= cycle_before
        assert sup.restarts["cell0"] == 1
        while replacement.cycle < cycle_before + 3 \
                and time.monotonic() < deadline:
            time.sleep(0.02)
        assert replacement.cycle >= cycle_before + 3
        sup.request_shutdown()
        runner.join(timeout=10.0)
        sup.join(timeout=10.0)
        assert replacement.state == STOPPED


# -- control plane ------------------------------------------------------------


def _get(port, path):
    try:
        with urllib.request.urlopen(
                f"http://127.0.0.1:{port}{path}",
                timeout=5) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8")


def _post(port, path, payload):
    data = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=5) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8")


class TestControlPlane:
    @pytest.fixture()
    def service(self, tmp_path):
        sup = Supervisor(
            serve_config(tmp_path, cycle_period_s=0.005),
            small_cell())
        control = ControlServer(sup)
        control.start()
        sup.start()
        runner = threading.Thread(target=sup.run, daemon=True)
        runner.start()
        deadline = time.monotonic() + 20.0
        while not sup.ready and time.monotonic() < deadline:
            time.sleep(0.01)
        yield sup, control
        sup.request_shutdown()
        runner.join(timeout=10.0)
        sup.join(timeout=10.0)
        control.stop()

    def test_endpoints(self, service):
        sup, control = service
        port = control.port

        status, body = _get(port, "/healthz")
        assert status == 200
        assert json.loads(body)["ready"] is True

        status, body = _get(port, "/status")
        payload = json.loads(body)
        assert payload["cells"][0]["state"] == "running"

        status, body = _get(port, "/metrics")
        assert status == 200
        assert "osu_serve_cycles_total" in body
        assert 'cell="cell0"' in body

        status, body = _post(port, "/cells/cell0/load",
                             {"factor": 2.0})
        assert status == 202
        status, body = _post(port, "/cells/cell0/join",
                             {"service": "data"})
        assert status == 202
        assert json.loads(body)["enqueued"]["name"] == "data-4"
        status, body = _post(port, "/cells/cell0/faults",
                             {"schedule": "cf_storm:*@1+2",
                              "probe": True})
        assert status == 202

        status, _ = _post(port, "/cells/nope/load", {"factor": 1.0})
        assert status == 404
        status, _ = _post(port, "/cells/cell0/load", {"factor": 1e9})
        assert status == 400
        status, _ = _get(port, "/nope")
        assert status == 404

        cell = sup.cells["cell0"]
        deadline = time.monotonic() + 20.0
        while cell.counters["joins_data"] < 1 \
                and time.monotonic() < deadline:
            time.sleep(0.02)
        assert cell.counters["joins_data"] == 1
        assert len(cell.run.data_users) == 5

    def test_shutdown_endpoint_drains(self, service):
        sup, control = service
        status, _ = _post(control.port, "/shutdown", {})
        assert status == 200
        deadline = time.monotonic() + 20.0
        while not sup.done and time.monotonic() < deadline:
            time.sleep(0.02)
        assert sup.done
        assert sup.cells["cell0"].state == STOPPED
        status, body = _get(control.port, "/healthz")
        assert status == 503


# -- the acceptance soak: SIGKILL, resume, stabilize --------------------------


def _parse_counters(text):
    counters = {}
    for line in text.splitlines():
        if line.startswith("#") or not line.strip():
            continue
        name, _, value = line.rpartition(" ")
        if "_total" in name:
            counters[name] = float(value)
    return counters


@pytest.mark.slow
def test_sigkill_resume_soak(tmp_path):
    """Kill -9 a soak mid-run; --resume must restore a clean service.

    Asserts the PR's acceptance criteria: /healthz ready after resume,
    zero invariant violations within the stabilization window, and
    every exported counter monotonic across the restart boundary.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    port_file = str(tmp_path / "port")
    args = [sys.executable, "-m", "repro", "serve",
            "--name", "soak", "--journal-dir", str(tmp_path),
            "--cycle-period", "0.01", "--checkpoint-every", "1",
            "--data-users", "4", "--gps-users", "2", "--seed", "5",
            "--stabilize-window", "10", "--port-file", port_file]

    def wait_port():
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            try:
                with open(port_file, "r", encoding="utf-8") as handle:
                    return int(handle.read().strip())
            except (OSError, ValueError):
                time.sleep(0.05)
        raise AssertionError("control plane never came up")

    def wait_ready(port):
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            try:
                status, _ = _get(port, "/healthz")
                if status == 200:
                    return
            except (urllib.error.URLError, OSError):
                pass
            time.sleep(0.05)
        raise AssertionError("service never became ready")

    victim = subprocess.Popen(args, env=env, cwd=REPO_ROOT,
                              stdout=subprocess.PIPE,
                              stderr=subprocess.PIPE)
    try:
        port = wait_port()
        wait_ready(port)
        # Stir the pot: a fault burst and a runtime join mid-soak.
        status, _ = _post(port, "/cells/cell0/faults",
                          {"schedule": "crash:data-0@1;"
                                       "restart:data-0@3;"
                                       "cf_storm:*@1+2",
                           "probe": True})
        assert status == 202
        status, _ = _post(port, "/cells/cell0/join",
                          {"service": "data"})
        assert status in (202, 503)
        time.sleep(1.2)  # let cycles, snapshots, and faults happen
        _, metrics_before = _get(port, "/metrics")
        _, status_body = _get(port, "/status")
        cycle_before = json.loads(status_body)["cells"][0]["cycle"]
        assert cycle_before > 10
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=30)
        assert victim.returncode == -signal.SIGKILL
    finally:
        if victim.poll() is None:
            victim.kill()

    os.unlink(port_file)
    resumed = subprocess.Popen(args + ["--resume"], env=env,
                               cwd=REPO_ROOT,
                               stdout=subprocess.PIPE,
                               stderr=subprocess.PIPE)
    try:
        port = wait_port()
        wait_ready(port)
        # Wait until (a) the pre-kill cycle count is passed so counter
        # comparisons are apples-to-apples, and (b) the stabilization
        # window after resume has been observed.
        deadline = time.monotonic() + 60.0
        final = None
        while time.monotonic() < deadline:
            _, body = _get(port, "/status")
            final = json.loads(body)["cells"][0]
            if final["cycle"] >= cycle_before + 10 \
                    and final["resume_clean"] is not None:
                break
            time.sleep(0.1)
        assert final is not None
        assert final["cycle"] >= cycle_before + 10, final
        # Self-stabilization: K cycles after resume, no new violations.
        assert final["resume_clean"] is True, final
        assert final["violations_since_resume"] == 0, final
        _, metrics_after = _get(port, "/metrics")
        before = _parse_counters(metrics_before)
        after = _parse_counters(metrics_after)
        regressions = {
            name: (value, after.get(name))
            for name, value in before.items()
            if name in after and after[name] < value}
        assert not regressions, (
            f"counters moved backwards across resume: {regressions}")
        # Clean drain on SIGTERM.
        resumed.send_signal(signal.SIGTERM)
        out, err = resumed.communicate(timeout=60)
        assert resumed.returncode == 0, err.decode()
        stopped = json.loads(out.decode().splitlines()[-1])
        assert stopped["event"] == "stopped"
        assert stopped["cells"][0]["state"] == "stopped"
    finally:
        if resumed.poll() is None:
            resumed.kill()
            resumed.communicate(timeout=30)
