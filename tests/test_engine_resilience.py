"""Fault tolerance of the run engine.

Covers the resilience layer end to end with the deterministic executor
fault injector (:mod:`repro.engine.faultsim`): worker-crash recovery
must stay bit-identical to a clean serial run, hung points must be
killed and retried under a timeout, exhausted points must be salvaged
as structured failures, and a SIGKILLed sweep must resume from its
checkpoint journal recomputing only the unfinished points.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

import pytest

from repro.engine import (
    ExecFaultPlan,
    FaultyTask,
    ParallelExecutor,
    PointFailureError,
    ResultCache,
    RunPolicy,
    RunSpec,
    SweepJournal,
    execute,
    point_key,
    resolve_policy,
)
from tests._resilience_tasks import (
    grid_spec,
    kill_spec,
    raise_keyboard_interrupt,
    square,
    square_values,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


# -- crash / hang / error recovery ----------------------------------------


def test_parallel_crash_recovery_is_bit_identical():
    """Workers dying mid-grid must not change the sweep's results."""
    plan = ExecFaultPlan(seed=0, crash_rate=0.3)
    spec = grid_spec(12, fn=FaultyTask(fn=square, plan=plan),
                     name="crash-recovery")
    cursed = plan.cursed([point.config for point in spec.points])
    assert len(cursed) >= 2  # >= 1 crash per 10 points (acceptance)

    result = execute(spec, jobs=3, cache=False)

    assert result.values == square_values(12)  # == clean serial run
    assert result.failures == []
    assert result.stats.respawns >= 1
    assert result.stats.points == 12


def test_parallel_hang_timeout_recovery():
    """Hung workers are killed at the deadline and the point retried."""
    plan = ExecFaultPlan(seed=0, hang_rate=0.3, hang_s=30.0)
    spec = grid_spec(6, fn=FaultyTask(fn=square, plan=plan),
                     name="hang-recovery")
    cursed = plan.cursed([point.config for point in spec.points])
    assert len(cursed) >= 1

    started = time.monotonic()
    result = execute(spec, jobs=2, cache=False,
                     policy=RunPolicy(timeout_s=0.75, retries=1,
                                      backoff_s=0.01))
    elapsed = time.monotonic() - started

    assert result.values == square_values(6)
    assert result.failures == []
    assert result.stats.timeouts >= len(cursed)
    assert result.stats.respawns >= 1
    # The hang is 30s; finishing quickly proves preemption worked.
    assert elapsed < 20.0


def test_serial_retries_until_success():
    plan = ExecFaultPlan(seed=0, error_rate=1.0, faults_per_point=2)
    spec = grid_spec(4, fn=FaultyTask(fn=square, plan=plan),
                     name="serial-retry")

    result = execute(spec, jobs=1, cache=False,
                     policy=RunPolicy(retries=2, backoff_s=0.0))

    assert result.values == square_values(4)
    assert result.failures == []
    assert result.stats.retries == 8  # 2 burned attempts per point


def test_exhausted_retries_are_salvaged_not_raised():
    """Failed points become PointFailure records; the reducer only
    ever sees the survivors."""
    plan = ExecFaultPlan(seed=0, error_rate=0.3, faults_per_point=99)
    base = grid_spec(8, fn=FaultyTask(fn=square, plan=plan))
    cursed = plan.cursed([point.config for point in base.points])
    assert 0 < len(cursed) < 8
    spec = RunSpec(name="salvage", points=base.points,
                   reducer=lambda values, points: list(values))

    result = execute(spec, jobs=1, cache=False,
                     policy=RunPolicy(retries=1, backoff_s=0.0))

    assert len(result.failures) == len(cursed)
    for failure in result.failures:
        assert failure.kind == "exception"
        assert failure.error == "InjectedFault"
        assert failure.attempts == 2
        assert failure.key is not None
        assert "x" in failure.label
        assert result.values[failure.index] is None
    # The reducer received only the surviving points.
    assert len(result.reduced) == 8 - len(cursed)
    assert all(value is not None for value in result.reduced)
    # The structured report round-trips through JSON.
    report = result.failure_report()
    assert report["points"] == 8
    assert len(json.loads(json.dumps(report))["failed"]) == len(cursed)


def test_fail_fast_raises_point_failure_error():
    plan = ExecFaultPlan(seed=0, error_rate=1.0, faults_per_point=99)
    spec = grid_spec(3, fn=FaultyTask(fn=square, plan=plan),
                     name="fail-fast")
    with pytest.raises(PointFailureError) as caught:
        execute(spec, jobs=1, cache=False,
                policy=RunPolicy(fail_fast=True, backoff_s=0.0))
    assert caught.value.failure.kind == "exception"


def test_keyboard_interrupt_cancels_queued_points():
    """Ctrl-C in a worker propagates after the pool is shut down."""
    executor = ParallelExecutor(2)
    tasks = [(raise_keyboard_interrupt, {"x": 0}), (square, {"x": 1}),
             (square, {"x": 2}), (square, {"x": 3})]
    with pytest.raises(KeyboardInterrupt):
        executor.map(tasks)


# -- kill -> --resume ------------------------------------------------------


def test_sigkilled_sweep_resumes_from_journal(tmp_path, monkeypatch):
    """A sweep killed mid-point resumes recomputing only the rest."""
    marker = str(tmp_path / "died.marker")
    journal_dir = str(tmp_path / "journal")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(REPO_ROOT, "src"), REPO_ROOT])
    env["REPRO_JOURNAL_DIR"] = journal_dir
    env["REPRO_CACHE"] = "0"

    # Victim run: point 5 of 8 os._exit()s the interpreter -- to the
    # journal this is indistinguishable from a SIGKILL mid-sweep.
    code = (
        "from tests._resilience_tasks import kill_spec\n"
        "from repro.engine import execute\n"
        f"execute(kill_spec({marker!r}), jobs=1, cache=False, "
        "resume=True)\n")
    victim = subprocess.run([sys.executable, "-c", code],
                            cwd=REPO_ROOT, env=env,
                            capture_output=True, text=True, timeout=120)
    assert victim.returncode == 9, victim.stderr
    assert os.path.exists(marker)
    # The kill leaves the journal plus its (now-stale) pidfile lock;
    # resume steals the stale lock and proceeds.
    journals = sorted(os.listdir(journal_dir))
    assert len(journals) == 2
    assert journals[0].endswith(".jsonl")
    assert journals[1].endswith(".jsonl.lock")

    # Resume: the five journaled points are replayed, the in-flight
    # point and the two never-started ones are recomputed.
    monkeypatch.setenv("REPRO_JOURNAL_DIR", journal_dir)
    result = execute(kill_spec(marker), jobs=1, cache=False,
                     resume=True)
    assert result.values == square_values(8)
    assert result.stats.resumed == 5
    assert result.stats.executed == 3
    assert "5 resumed" in result.stats.format()
    # A cleanly finished sweep discards its journal.
    assert os.listdir(journal_dir) == []


def test_journal_skips_torn_and_foreign_lines(tmp_path):
    keys = ["key-a", "key-b"]
    journal = SweepJournal("torn", keys, root=str(tmp_path))
    assert journal.append("key-a", {"v": 1})
    journal.close()
    with open(journal.path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps({"key": "foreign", "value": 2}) + "\n")
        handle.write('{"key": "key-b", "val')  # torn mid-write kill

    loaded = SweepJournal("torn", keys, root=str(tmp_path)).load()
    assert loaded == {"key-a": {"v": 1}}

    # A different grid hashes to a different journal file.
    other = SweepJournal("torn", keys + ["key-c"], root=str(tmp_path))
    assert other.path != journal.path

    journal.discard()
    assert not os.path.exists(journal.path)


def test_journal_rejects_unserializable_values(tmp_path):
    journal = SweepJournal("binary", ["k"], root=str(tmp_path))
    assert not journal.append("k", object())
    assert journal.load() == {}
    journal.close()


# -- cache hygiene satellites ----------------------------------------------


def test_cache_scavenges_stale_tmp_files(tmp_path):
    root = tmp_path / "cache"
    root.mkdir()
    stale = root / "orphan.tmp"
    stale.write_text("half-written")
    hour_ago = time.time() - 3600
    os.utime(stale, (hour_ago, hour_ago))
    fresh = root / "live.tmp"
    fresh.write_text("still being written")

    ResultCache(str(root))

    assert not stale.exists()  # orphan swept at startup
    assert fresh.exists()  # young file may belong to a live writer


def test_corrupt_cache_entry_is_quarantined(tmp_path):
    cache = ResultCache(str(tmp_path))
    assert cache.put("key1", {"a": 1})
    (tmp_path / "key1.json").write_text("{not json", encoding="utf-8")

    hit, _ = cache.get("key1")

    assert not hit
    assert cache.quarantined == 1
    assert (tmp_path / "key1.corrupt").exists()
    assert not (tmp_path / "key1.json").exists()
    # The key is usable again after quarantine.
    assert cache.put("key1", {"a": 2})
    assert cache.get("key1") == (True, {"a": 2})


def test_clear_sweeps_entries_tmp_and_corrupt(tmp_path):
    cache = ResultCache(str(tmp_path))
    assert cache.put("k", 1)
    (tmp_path / "x.tmp").write_text("", encoding="utf-8")
    (tmp_path / "y.corrupt").write_text("", encoding="utf-8")
    assert cache.clear() == 3
    assert list(tmp_path.iterdir()) == []


def test_execute_counts_quarantined_entries(tmp_path):
    spec = grid_spec(2, name="quarantine")
    cache = ResultCache(str(tmp_path))
    key = point_key(spec.points[0].fn, spec.points[0].config)
    (tmp_path / f"{key}.json").write_text("{broken", encoding="utf-8")

    result = execute(spec, jobs=1, cache=cache)

    assert result.stats.quarantined == 1
    assert result.values == square_values(2)  # recomputed, not lost


# -- policy resolution and CLI wiring --------------------------------------


def test_policy_env_mirrors(monkeypatch):
    monkeypatch.setenv("REPRO_TIMEOUT", "2.5")
    monkeypatch.setenv("REPRO_RETRIES", "3")
    monkeypatch.setenv("REPRO_FAIL_FAST", "1")
    policy = resolve_policy()
    assert policy.timeout_s == 2.5
    assert policy.retries == 3
    assert policy.fail_fast
    # Explicit overrides beat the environment, including falsy ones.
    assert resolve_policy(retries=0).retries == 0


def test_backoff_is_exponential_and_capped():
    policy = RunPolicy(backoff_s=0.1, backoff_cap_s=0.35)
    assert policy.backoff(1) == pytest.approx(0.1)
    assert policy.backoff(2) == pytest.approx(0.2)
    assert policy.backoff(3) == pytest.approx(0.35)  # capped
    assert RunPolicy(backoff_s=0.0).backoff(5) == 0.0


def test_experiments_cli_installs_default_policy(monkeypatch, capsys):
    from repro.experiments import __main__ as experiments_cli
    from repro.experiments.runner import ExperimentResult

    for name in ("REPRO_TIMEOUT", "REPRO_RETRIES", "REPRO_FAIL_FAST",
                 "REPRO_RESUME"):
        monkeypatch.delenv(name, raising=False)
    captured = {}

    def stub(quick=False, jobs=None, cache=None):
        captured["policy"] = resolve_policy()
        return ExperimentResult(experiment_id="stub", title="stub",
                                headers=["a"], rows=[[1]])

    monkeypatch.setitem(experiments_cli.EXPERIMENTS, "stub", stub)
    code = experiments_cli.main(
        ["stub", "--retries", "2", "--timeout", "5", "--fail-fast"])
    assert code == 0
    policy = captured["policy"]
    assert policy.retries == 2
    assert policy.timeout_s == 5.0
    assert policy.fail_fast
    # The default is uninstalled once the CLI returns.
    assert resolve_policy().retries == 0
    capsys.readouterr()


def test_sweep_cli_accepts_resilience_flags(tmp_path, monkeypatch,
                                            capsys):
    from repro.cli import main

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_JOURNAL_DIR", str(tmp_path / "journal"))
    code = main(["sweep", "--loads", "0.3", "--seeds", "1",
                 "--cycles", "40", "--warmup", "5",
                 "--resume", "--retries", "1", "--json"])
    assert code == 0
    out = capsys.readouterr().out
    points = json.loads(out)
    assert len(points) == 1
    assert points[0]["load"] == 0.3
