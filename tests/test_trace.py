"""Tests for the tracing instrumentation."""

import json

from repro.core.cell import build_cell
from repro.core.config import CellConfig
from repro.trace import CellTracer


def traced_run(**overrides):
    defaults = dict(num_data_users=4, num_gps_users=2, load_index=0.5,
                    cycles=40, warmup_cycles=10, seed=13)
    defaults.update(overrides)
    config = CellConfig(**defaults)
    run = build_cell(config)
    tracer = CellTracer(run)
    run.sim.run(until=config.duration)
    return run, tracer


class TestCellTracer:
    def test_records_all_on_air_categories(self):
        _run, tracer = traced_run()
        summary = tracer.summary()
        assert summary.get("downlink/cf1", 0) == 40  # one per cycle
        assert summary.get("downlink/cf2", 0) == 40
        assert summary.get("uplink/data", 0) > 20
        assert summary.get("uplink/gps", 0) > 50
        assert summary.get("control/registration", 0) == 6

    def test_collisions_visible_in_trace(self):
        # A registration storm guarantees contention collisions.
        _run, tracer = traced_run(num_data_users=10, num_gps_users=6)
        assert tracer.count(category="uplink", event="collision") > 0

    def test_query_filters(self):
        run, tracer = traced_run()
        sender = run.gps_units[0].name
        gps_events = list(tracer.query(category="uplink", event="gps",
                                       actor=sender))
        assert gps_events
        assert all(event.actor == sender for event in gps_events)
        assert all(event.detail["slot_kind"] == "gps"
                   for event in gps_events)

    def test_since_filter(self):
        run, tracer = traced_run()
        midpoint = run.config.duration / 2
        late = list(tracer.query(since=midpoint))
        assert late
        assert all(event.time >= midpoint for event in late)

    def test_jsonl_export(self, tmp_path):
        _run, tracer = traced_run()
        path = tmp_path / "trace.jsonl"
        count = tracer.write_jsonl(str(path))
        lines = path.read_text().strip().splitlines()
        assert len(lines) == count == len(tracer.events)
        parsed = json.loads(lines[0])
        assert {"time", "category", "event", "actor"} <= set(parsed)

    def test_event_cap_drops_instead_of_growing(self):
        config = CellConfig(num_data_users=4, num_gps_users=2,
                            load_index=0.5, cycles=40,
                            warmup_cycles=10, seed=13)
        run = build_cell(config)
        tracer = CellTracer(run, max_events=50)
        run.sim.run(until=config.duration)
        assert len(tracer.events) == 50
        assert tracer.dropped > 0

    def test_combined_category_and_event_filter(self):
        """category= and event= compose (logical AND), and agree
        with counting the same query."""
        _run, tracer = traced_run(num_data_users=10, num_gps_users=6)
        both = list(tracer.query(category="uplink", event="collision"))
        assert both
        assert all(event.category == "uplink"
                   and event.event == "collision" for event in both)
        assert len(both) == tracer.count(category="uplink",
                                         event="collision")
        # The conjunction is strictly narrower than either filter.
        assert len(both) < tracer.count(category="uplink")

    def test_jsonl_round_trip_parses_every_line(self, tmp_path):
        _run, tracer = traced_run()
        path = tmp_path / "trace.jsonl"
        count = tracer.write_jsonl(str(path))
        parsed = [json.loads(line)
                  for line in path.read_text().splitlines()]
        assert len(parsed) == count
        for record, event in zip(parsed, tracer.events):
            assert record["time"] == event.time
            assert record["category"] == event.category
            assert record["event"] == event.event
            assert record["actor"] == event.actor
        times = [record["time"] for record in parsed]
        assert times == sorted(times)

    def test_zero_duration_run_yields_empty_trace(self, tmp_path):
        config = CellConfig(num_data_users=2, num_gps_users=1,
                            load_index=0.5, cycles=10,
                            warmup_cycles=2, seed=5)
        run = build_cell(config)
        tracer = CellTracer(run)
        run.sim.run(until=0.0)  # nothing ever happens
        assert tracer.events == []
        assert tracer.summary() == {}
        assert tracer.count() == 0
        path = tmp_path / "empty.jsonl"
        assert tracer.write_jsonl(str(path)) == 0
        assert path.read_text() == ""

    def test_tracing_does_not_perturb_results(self):
        """Instrumentation must be observationally transparent."""
        config = dict(num_data_users=4, num_gps_users=2, load_index=0.5,
                      cycles=40, warmup_cycles=10, seed=13)
        plain = build_cell(CellConfig(**config))
        plain.sim.run(until=plain.config.duration)
        traced, _tracer = traced_run(**config)
        assert plain.stats.data_packets_delivered \
            == traced.stats.data_packets_delivered
        assert plain.stats.gps_packets_delivered \
            == traced.stats.gps_packets_delivered
