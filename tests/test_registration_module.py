"""Tests for the base station's registration-handling module."""

import pytest

from repro.core.packets import SERVICE_DATA, SERVICE_GPS
from repro.core.registration import RegistrationModule


class TestApproval:
    def test_assigns_unique_uids(self):
        module = RegistrationModule()
        uids = {module.approve(ein, SERVICE_DATA, 0.0).uid
                for ein in range(20)}
        assert len(uids) == 20

    def test_duplicate_ein_returns_existing(self):
        module = RegistrationModule()
        first = module.approve(0xAAAA, SERVICE_DATA, 1.0)
        second = module.approve(0xAAAA, SERVICE_DATA, 2.0)
        assert first is second
        assert module.active_data == 1

    def test_gps_capacity_eight(self):
        module = RegistrationModule()
        for ein in range(8):
            assert module.approve(ein, SERVICE_GPS, 0.0) is not None
        assert module.approve(99, SERVICE_GPS, 0.0) is None
        assert module.rejected == 1
        # data admission is unaffected
        assert module.approve(100, SERVICE_DATA, 0.0) is not None

    def test_uid_space_cap(self):
        module = RegistrationModule(max_data_users=100)
        approved = sum(
            1 for ein in range(80)
            if module.approve(ein, SERVICE_DATA, 0.0) is not None)
        assert approved == 63  # 6-bit uid space minus the sentinel

    def test_unknown_service_rejected(self):
        module = RegistrationModule()
        with pytest.raises(ValueError):
            module.approve(1, 7, 0.0)


class TestRelease:
    def test_release_frees_uid_without_immediate_reuse(self):
        module = RegistrationModule()
        record = module.approve(1, SERVICE_DATA, 0.0)
        module.release(record.uid)
        assert module.lookup_ein(1) is None
        assert module.lookup_uid(record.uid) is None
        # Round-robin allocation: the freed ID is NOT handed straight
        # to the next registrant (a lease-evicted subscriber may still
        # be transmitting under it); the space rotates first.
        replacement = module.approve(2, SERVICE_DATA, 0.0)
        assert replacement.uid != record.uid
        assert module.lookup_uid(replacement.uid) is replacement

    def test_released_uid_comes_back_after_rotation(self):
        from repro.core.packets import MAX_ASSIGNABLE_UID

        module = RegistrationModule(max_data_users=100)
        first = module.approve(0, SERVICE_DATA, 0.0)
        module.release(first.uid)
        # Burn through the rest of the 6-bit space (sentinel excluded);
        # only then is uid 0 eligible again.
        seen = [module.approve(ein, SERVICE_DATA, 0.0).uid
                for ein in range(1, MAX_ASSIGNABLE_UID + 1)]
        assert first.uid not in seen
        wrapped = module.approve(999, SERVICE_DATA, 0.0)
        assert wrapped.uid == first.uid

    def test_release_unknown_uid(self):
        module = RegistrationModule()
        assert module.release(5) is None

    def test_lookup(self):
        module = RegistrationModule()
        record = module.approve(0x1234, SERVICE_GPS, 3.5)
        assert module.lookup_ein(0x1234) is record
        assert module.lookup_uid(record.uid) is record
        assert record.registered_at == 3.5
        assert record.service == SERVICE_GPS
