"""Integration tests for full-fidelity mode.

With ``full_fidelity=True``, control fields and data packets are really
bit-packed, RS(64,48)-encoded, corrupted symbol-by-symbol, and decoded
at the receiver; the MAC operates on the decoded bits, with built-in
cross-checks (a decode that disagrees with the logical packet raises).
These tests exercise that whole path under live traffic.
"""

import pytest

from repro import CellConfig, run_cell, run_cell_detailed
from repro.core.subscriber import ACTIVE


def fidelity_config(**overrides):
    defaults = dict(num_data_users=5, num_gps_users=2, load_index=0.5,
                    cycles=60, warmup_cycles=12, seed=8,
                    full_fidelity=True)
    defaults.update(overrides)
    return CellConfig(**defaults)


class TestCleanChannel:
    def test_matches_object_mode_results(self):
        """On a perfect channel, operating on decoded bits must give the
        same trajectory as operating on the logical objects."""
        object_mode = run_cell(fidelity_config(full_fidelity=False))
        bit_mode = run_cell(fidelity_config())
        assert object_mode.data_packets_delivered \
            == bit_mode.data_packets_delivered
        assert object_mode.registrations_completed \
            == bit_mode.registrations_completed
        assert object_mode.gps_packets_delivered \
            == bit_mode.gps_packets_delivered
        assert bit_mode.radio_violations == 0

    def test_everyone_registers_through_real_bits(self):
        run = run_cell_detailed(fidelity_config())
        assert all(u.state == ACTIVE for u in run.data_users)
        assert all(g.state == ACTIVE for g in run.gps_units)


class TestNoisyChannel:
    def test_correctable_noise_is_transparent(self):
        """SER 2% means ~1.3 errors per 64-symbol codeword: RS corrects
        everything and the MAC sees a clean channel."""
        stats = run_cell(fidelity_config(error_model="iid",
                                         symbol_error_rate=0.02))
        assert stats.cf_losses == 0
        assert stats.data_packets_sent == stats.data_packets_delivered \
            + (stats.data_packets_sent - stats.data_packets_delivered)
        assert stats.message_loss_rate() == 0.0
        assert stats.radio_violations == 0

    def test_heavy_noise_loses_but_recovers(self):
        """SER 8% (expected 5.1 errors/codeword, fat tail past t=8):
        codewords drop, the ACK machinery retransmits, traffic still
        flows, and nothing is ever delivered corrupted (the built-in
        wire-decode cross-check would raise)."""
        stats = run_cell(fidelity_config(error_model="iid",
                                         symbol_error_rate=0.08,
                                         cycles=100, warmup_cycles=15))
        assert stats.cf_losses > 0
        assert stats.data_packets_delivered > 20
        assert stats.data_packets_sent > stats.data_packets_delivered
        assert stats.radio_violations == 0

    def test_forward_traffic_through_real_codec(self):
        stats = run_cell(fidelity_config(forward_load_index=0.3,
                                         error_model="iid",
                                         symbol_error_rate=0.05))
        assert stats.forward_packets_sent > 0
        # Some downlink losses are expected at SER 5%.
        assert stats.forward_packets_delivered \
            <= stats.forward_packets_sent

    def test_gilbert_elliott_bursts(self):
        stats = run_cell(fidelity_config(error_model="ge",
                                         cycles=100, warmup_cycles=15))
        assert stats.data_packets_delivered > 20
        assert stats.radio_violations == 0
