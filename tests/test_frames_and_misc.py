"""Small remaining units: frames, error-model edges, link accounting."""

import random

import pytest

from repro.core.frames import (
    DownlinkFrame,
    KIND_DATA,
    KIND_GPS,
    SLOT_DATA,
    SLOT_GPS,
    UplinkFrame,
)
from repro.phy.channel import Link, Transmission
from repro.phy.errors import GilbertElliottModel, OutageModel
from repro.phy.rs import RS_64_48


class TestFrames:
    def test_uplink_frame_defaults(self):
        frame = UplinkFrame(kind=KIND_DATA, cycle=3,
                            slot_kind=SLOT_DATA, slot_index=2,
                            packet=None)
        assert frame.uid is None
        assert frame.contention is False
        assert frame.first_attempt_time == 0.0

    def test_downlink_frame_defaults(self):
        frame = DownlinkFrame(kind="cf1", cycle=7)
        assert frame.slot_index == -1
        assert frame.uid is None

    def test_slot_kind_constants_distinct(self):
        assert SLOT_DATA != SLOT_GPS
        assert KIND_DATA != KIND_GPS


class TestTransmission:
    def test_overlap_semantics(self):
        first = Transmission(sender="a", payload=None, start=0.0,
                             duration=1.0)
        touching = Transmission(sender="b", payload=None, start=1.0,
                                duration=1.0)
        overlapping = Transmission(sender="c", payload=None, start=0.5,
                                   duration=1.0)
        assert not first.overlaps(touching)  # half-open intervals
        assert first.overlaps(overlapping)
        assert overlapping.overlaps(first)

    def test_has_real_codewords(self):
        placeholder = Transmission(sender="a", payload=None, start=0,
                                   duration=1, codewords=[b""])
        real = Transmission(sender="a", payload=None, start=0,
                            duration=1,
                            codewords=[RS_64_48.encode(bytes(48))])
        none = Transmission(sender="a", payload=None, start=0,
                            duration=1)
        assert not placeholder.has_real_codewords
        assert real.has_real_codewords
        assert not none.has_real_codewords

    def test_end_property(self):
        transmission = Transmission(sender="a", payload=None,
                                    start=2.0, duration=0.5)
        assert transmission.end == 2.5


class TestLinkAccounting:
    def test_loss_counters(self):
        link = Link(OutageModel(1.0), random.Random(1))
        assert not link.survives(3)
        assert link.codewords_sent == 3
        assert link.codewords_lost == 3

    def test_deliver_codewords_counts(self):
        link = Link()
        link.deliver_codewords([RS_64_48.encode(bytes(48))] * 2)
        assert link.codewords_sent == 2
        assert link.codewords_lost == 0

    def test_fidelity_flag_default_off(self):
        assert Link().full_fidelity is False


class TestErrorModelEdges:
    def test_ge_parameter_validation(self):
        with pytest.raises(ValueError):
            GilbertElliottModel(p_good=-0.1)
        with pytest.raises(ValueError):
            GilbertElliottModel(p_bad=1.5)

    def test_ge_advance_short_gap_keeps_state(self):
        model = GilbertElliottModel(p_good_to_bad=1e-9,
                                    p_bad_to_good=1e-9)
        model.state = model.BAD
        model.advance(0.001, random.Random(2))
        assert model.state == model.BAD  # memory survives short gaps

    def test_ge_advance_zero_duration(self):
        model = GilbertElliottModel()
        state = model.state
        model.advance(0.0, random.Random(3))
        assert model.state == state

    def test_outage_validation(self):
        with pytest.raises(ValueError):
            OutageModel(-0.1)
        with pytest.raises(ValueError):
            OutageModel(1.1)
