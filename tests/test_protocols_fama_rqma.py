"""Tests for the FAMA and RQMA baseline models (completing Section 4)."""

import pytest

from repro.protocols import FAMA, RQMA


class TestFAMA:
    def test_floor_acquisition_carries_traffic(self):
        protocol = FAMA(num_terminals=10, arrival_probability=0.02,
                        seed=1)
        stats = protocol.run(20000)
        assert stats.data_packets_delivered > 100
        assert stats.throughput() > 0.2

    def test_collisions_cost_only_minislots(self):
        """FAMA's defining property vs ALOHA: a collision wastes one
        control mini-slot, not a whole packet time, so saturated
        throughput stays high."""
        protocol = FAMA(num_terminals=20, arrival_probability=1.0,
                        persistence=0.1, data_minislots=10, seed=2)
        stats = protocol.run(30000)
        # 10 payload mini-slots per (1 RTS + 1 CTS + 10 data) exchange is
        # ~0.83; collisions and idles eat some but it stays well above
        # ALOHA's 1/e on *packet* slots.
        assert stats.throughput() > 0.55

    def test_floor_is_exclusive(self):
        """While the floor is held, no other terminal transmits: there
        can be no payload collisions at all."""
        protocol = FAMA(num_terminals=15, arrival_probability=0.5,
                        seed=3)
        protocol.run(10000)
        # All collisions recorded are RTS collisions.
        assert protocol.stats.slots_collided == protocol.rts_collisions

    def test_control_overhead_reported(self):
        protocol = FAMA(num_terminals=5, arrival_probability=0.05,
                        seed=4)
        protocol.run(10000)
        assert protocol.control_overhead() > 0

    def test_longer_packets_amortize_overhead(self):
        short = FAMA(num_terminals=10, arrival_probability=1.0,
                     persistence=0.1, data_minislots=4, seed=5)
        long = FAMA(num_terminals=10, arrival_probability=1.0,
                    persistence=0.1, data_minislots=40, seed=5)
        assert long.run(30000).throughput() \
            > short.run(30000).throughput()

    def test_validation(self):
        with pytest.raises(ValueError):
            FAMA(0, 0.1)
        with pytest.raises(ValueError):
            FAMA(5, 0.1, persistence=0.0)
        with pytest.raises(ValueError):
            FAMA(5, 0.1, data_minislots=0)


class TestRQMA:
    def make(self, **kwargs):
        defaults = dict(num_rt_sessions=6, num_best_effort=6,
                        rt_period_frames=2, rt_deadline_frames=2,
                        be_arrival_probability=0.2, seed=7)
        defaults.update(kwargs)
        return RQMA(**defaults)

    def test_sessions_establish_and_deliver(self):
        protocol = self.make()
        stats = protocol.run(400)
        assert all(session.established for session in protocol.sessions)
        assert stats.rt_packets_delivered > 300
        assert stats.data_packets_delivered > 0

    def test_clean_channel_no_deadline_misses(self):
        """With capacity for the RT load and no channel errors, EDF
        meets every deadline."""
        stats = self.make(slot_error_probability=0.0).run(400)
        assert stats.rt_miss_rate() < 0.02  # setup transient only

    def test_edf_prioritizes_rt_over_best_effort(self):
        """Saturating best-effort traffic must not hurt RT deadlines."""
        stats = self.make(be_arrival_probability=0.9,
                          slot_error_probability=0.0).run(400)
        assert stats.rt_miss_rate() < 0.02

    def test_retransmission_session_cuts_misses(self):
        """RQMA's headline feature (the paper's survey calls it 'the
        most desirable feature'): pre-established retransmission
        sessions recover errored time-critical packets."""
        without = self.make(slot_error_probability=0.15,
                            rt_retransmission=False).run(600)
        with_rtx = self.make(slot_error_probability=0.15,
                             rt_retransmission=True).run(600)
        assert with_rtx.rt_retransmissions > 0
        assert with_rtx.rt_miss_rate() < 0.5 * without.rt_miss_rate()

    def test_deadline_misses_under_overload(self):
        """More RT load than transmission slots: EDF must shed."""
        protocol = self.make(num_rt_sessions=30, rt_period_frames=1,
                             transmission_slots=8)
        for session in protocol.sessions:
            session.established = True  # skip the setup bottleneck
        stats = protocol.run(300)
        assert stats.rt_deadline_misses > 0
        # ... but the slots that exist are fully used.
        assert stats.rt_packets_delivered > 0.9 * 8 * 300

    def test_counters_consistent(self):
        stats = self.make(slot_error_probability=0.1).run(300)
        assert stats.slots_carrying_payload <= stats.slots_total
        assert stats.rt_packets_delivered >= 0
