"""Picklable task functions for the engine resilience tests.

These live in an importable module (not a test file) so process-pool
workers and the kill/resume subprocess can unpickle them by reference,
and so the kill/resume test can rebuild the *same* spec -- hence the
same point keys -- in both the victim subprocess and the resuming test
process.
"""

from __future__ import annotations

import os
from typing import Any, Dict

from repro.engine import Point, RunSpec


def square(config: Dict[str, Any]) -> Dict[str, float]:
    value = float(config["x"])
    return {"x": value, "square": value * value}


def square_values(count: int) -> list:
    """The expected ``execute(...).values`` for an ``x = 0..count-1``
    grid (what a clean, fault-free run produces)."""
    return [square({"x": index}) for index in range(count)]


def exit_once_then_square(config: Dict[str, Any]) -> Dict[str, float]:
    """Kill the whole process the first time the marked point runs.

    ``os._exit`` skips every Python-level cleanup, so to the engine the
    first run looks exactly like a SIGKILL arriving mid-sweep; the
    marker file makes the next run (the resume) compute normally.
    """
    marker = config.get("exit_marker")
    if marker and not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as handle:
            handle.write("died once\n")
        os._exit(9)
    return square(config)


def raise_keyboard_interrupt(config: Dict[str, Any]) -> None:
    """Simulate a Ctrl-C arriving inside a pool worker."""
    raise KeyboardInterrupt


def kill_spec(marker: str, count: int = 8,
              kill_index: int = 5) -> RunSpec:
    """A grid whose ``kill_index``-th point dies mid-sweep once."""
    points = []
    for index in range(count):
        config = {"x": index,
                  "exit_marker": marker if index == kill_index else ""}
        points.append(Point(fn=exit_once_then_square, config=config,
                            label={"x": index}))
    return RunSpec(name="kill-resume", points=tuple(points))


def grid_spec(count: int, fn=square, name: str = "resilience") -> RunSpec:
    """An ``x = 0..count-1`` grid over ``fn`` (default: ``square``)."""
    points = tuple(Point(fn=fn, config={"x": index},
                         label={"x": index})
                   for index in range(count))
    return RunSpec(name=name, points=points)
