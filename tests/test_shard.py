"""Tests for the sharded city: config, mobility, envelopes, digests.

The acceptance property lives here: a sharded city run (16 cells, 2
shards, mobility enabled) produces a bit-identical city-state digest
under ``jobs=1`` (live serial shards) and ``jobs=2`` (replaying engine
pool points), and again after a crash + ``resume=True``.
"""

import json
import os
import random
import signal
import subprocess
import sys
import time

import pytest

from repro.core.config import CellConfig
from repro.obs.registry import MetricsRegistry, set_default_registry
from repro.shard import (
    CityConfig,
    CityCoordinator,
    CityIntegrityError,
    MobilityConfig,
    ShardSim,
    build_schedule,
    demo_config,
    run_city,
)
from repro.shard.envelopes import (
    canonical_order,
    handoff_envelope,
    message_envelope,
)
from repro.shard.journal import CityJournal


def city_config(**overrides) -> CityConfig:
    """16 cells, 2 shards, mobility on: the acceptance-scale city."""
    params = dict(
        rows=4, cols=4, num_shards=2,
        cell=CellConfig(num_data_users=2, num_gps_users=1,
                        load_index=0.0),
        load_index=0.3, inter_cell_fraction=0.5,
        epochs=3, cycles_per_epoch=12, warmup_cycles=4,
        mobility=MobilityConfig(movers_per_cell=1,
                                hops_per_epoch=1.0),
        seed=7)
    params.update(overrides)
    return CityConfig(**params)


@pytest.fixture(scope="module")
def serial_result():
    """One serial run of the acceptance city, shared across tests."""
    return run_city(city_config(), jobs=1, cache=False,
                    checkpoint=False)


# -- configuration -----------------------------------------------------------


class TestCityConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            city_config(num_shards=17)  # more shards than cells
        with pytest.raises(ValueError):
            city_config(num_shards=0)
        with pytest.raises(ValueError):
            city_config(cell=CellConfig(num_data_users=2,
                                        load_index=0.4))
        with pytest.raises(ValueError):
            city_config(cell=CellConfig(num_data_users=2,
                                        load_index=0.0,
                                        full_fidelity=True))
        with pytest.raises(ValueError):
            city_config(epochs=1, cycles_per_epoch=4,
                        warmup_cycles=10)
        with pytest.raises(ValueError):
            city_config(mobility=MobilityConfig(movers_per_cell=5))

    def test_shards_partition_the_grid(self):
        config = city_config(num_shards=3)
        owned = [cell for shard in range(3)
                 for cell in config.cells_of_shard(shard)]
        assert sorted(owned) == list(range(config.num_cells))
        for shard in range(3):
            for cell in config.cells_of_shard(shard):
                assert config.shard_of_cell(cell) == shard

    def test_grid_neighbors(self):
        config = city_config()  # 4x4
        assert config.neighbors(0) == [1, 4]
        assert config.neighbors(5) == [1, 4, 6, 9]
        assert config.neighbors(15) == [11, 14]

    def test_ein_blocks_are_disjoint_and_invertible(self):
        config = city_config()
        eins = config.all_eins()
        assert len(eins) == len(set(eins)) == 16 * 3
        for ein in eins:
            home = config.home_cell_of_ein(ein)
            assert 0 <= home < config.num_cells
        assert config.is_gps_ein(config.gps_ein(3, 0))
        assert not config.is_gps_ein(config.data_ein(3, 0))

    def test_round_trip_preserves_digest(self):
        config = demo_config(seed=3)
        clone = CityConfig.from_dict(
            json.loads(json.dumps(config.to_dict())))
        assert clone == config
        assert clone.digest() == config.digest()

    def test_rush_multiplier_shapes_the_rate(self):
        mobility = MobilityConfig(rush_multipliers=(0.5, 2.0))
        assert mobility.multiplier(0) == 0.5
        assert mobility.multiplier(1) == 2.0
        assert mobility.multiplier(5) == 1.0  # padded past the tuple


# -- mobility ----------------------------------------------------------------


class TestMobility:
    def test_schedule_is_deterministic(self):
        config = city_config()
        assert build_schedule(config) == build_schedule(config)
        other = build_schedule(city_config(seed=8))
        assert other != build_schedule(config)

    def test_schedule_walks_the_grid(self):
        config = city_config()
        events = build_schedule(config)
        assert events, "no mobility at hops_per_epoch=1.0"
        assert events == sorted(events,
                                key=lambda ev: (ev.time, ev.ein))
        position = {}
        for event in events:
            here = position.get(event.ein,
                                config.home_cell_of_ein(event.ein))
            assert event.from_cell == here
            assert event.to_cell in config.neighbors(here)
            assert 0 < event.time <= config.duration
            position[event.ein] = event.to_cell

    def test_zero_rate_means_no_events(self):
        config = city_config(
            mobility=MobilityConfig(movers_per_cell=1,
                                    hops_per_epoch=0.0))
        assert build_schedule(config) == []

    def test_adding_a_mover_preserves_existing_routes(self):
        base = city_config()
        more = city_config(
            cell=CellConfig(num_data_users=3, num_gps_users=1,
                            load_index=0.0),
            mobility=MobilityConfig(movers_per_cell=2,
                                    hops_per_epoch=1.0))
        base_routes = {}
        for event in build_schedule(base):
            base_routes.setdefault(event.ein, []).append(event)
        more_routes = {}
        for event in build_schedule(more):
            more_routes.setdefault(event.ein, []).append(event)
        for ein, route in base_routes.items():
            assert more_routes[ein] == route


# -- envelopes ---------------------------------------------------------------


class TestEnvelopes:
    def test_canonical_order_is_permutation_invariant(self):
        envelopes = [
            message_envelope(dest_ein=7, dest_cell=1, message_id=3,
                             size_bytes=10, created_at=0.5,
                             src_cell=0, sent_at=1.5),
            message_envelope(dest_ein=7, dest_cell=1, message_id=2,
                             size_bytes=10, created_at=0.4,
                             src_cell=0, sent_at=1.5),
            handoff_envelope(ein=9, from_cell=0, to_cell=1,
                             depart_time=2.0, hop=1, state={}),
            handoff_envelope(ein=8, from_cell=2, to_cell=3,
                             depart_time=2.0, hop=1, state={}),
        ]
        reference = canonical_order(envelopes)
        for seed in range(5):
            shuffled = list(envelopes)
            random.Random(seed).shuffle(shuffled)
            assert canonical_order(shuffled) == reference

    def test_handoffs_sort_before_messages(self):
        message = message_envelope(dest_ein=7, dest_cell=1,
                                   message_id=1, size_bytes=10,
                                   created_at=0.0, src_cell=0,
                                   sent_at=0.1)
        handoff = handoff_envelope(ein=9, from_cell=0, to_cell=1,
                                   depart_time=99.0, hop=1, state={})
        assert canonical_order([message, handoff]) \
            == [handoff, message]


# -- the determinism contract ------------------------------------------------


class TestCityDeterminism:
    def test_jobs1_and_jobs2_digests_are_identical(self, serial_result):
        pooled = run_city(city_config(), jobs=2, cache=False,
                          checkpoint=False)
        assert pooled.digest == serial_result.digest
        assert pooled.epoch_digests == serial_result.epoch_digests
        assert pooled.counters == serial_result.counters
        assert pooled.directory == serial_result.directory

    def test_the_city_actually_exercises_the_barrier(self, serial_result):
        counters = serial_result.counters
        assert counters["handoffs_out"] > 0, "no cross-shard handoff"
        assert counters["messages_cross_shard"] > 0
        assert counters["messages_received"] > 0
        assert counters["handoffs_in"] <= counters["handoffs_out"]

    def test_different_seed_different_digest(self, serial_result):
        other = run_city(city_config(seed=8), jobs=1, cache=False,
                         checkpoint=False)
        assert other.digest != serial_result.digest

    def test_directory_tracks_every_subscriber(self, serial_result):
        config = city_config()
        assert sorted(serial_result.directory) == config.all_eins()
        for cell in serial_result.directory.values():
            assert 0 <= cell < config.num_cells

    def test_single_shard_city_runs(self):
        config = city_config(rows=2, cols=2, num_shards=1,
                             epochs=2)
        result = run_city(config, jobs=1, cache=False,
                          checkpoint=False)
        assert result.counters["messages_cross_shard"] == 0
        assert result.counters["handoffs_out"] == 0


# -- crash + resume ----------------------------------------------------------


def crash_after_epochs(config, epochs, journal_root):
    """Run a checkpointing city and die at the Nth barrier merge."""

    class Crash(Exception):
        pass

    coordinator = CityCoordinator(config, jobs=1, cache=False,
                                  checkpoint=True,
                                  journal_root=journal_root)
    merge = coordinator._merge
    barriers = {"seen": 0}

    def crashing_merge(reports):
        barriers["seen"] += 1
        if barriers["seen"] >= epochs:
            raise Crash()
        return merge(reports)

    coordinator._merge = crashing_merge
    with pytest.raises(Crash):
        coordinator.run()


class TestCityResume:
    def test_resume_reproduces_the_digest(self, serial_result,
                                          tmp_path):
        config = city_config()
        crash_after_epochs(config, 2, str(tmp_path))
        journal = tmp_path / f"city-{config.digest()[:16]}.jsonl"
        assert journal.exists(), "crash did not leave a journal"
        resumed = run_city(config, jobs=1, cache=False,
                           checkpoint=True,
                           journal_root=str(tmp_path), resume=True)
        assert resumed.digest == serial_result.digest
        assert resumed.verified_epochs == 2
        assert not journal.exists(), "journal kept after clean finish"

    def test_resume_rejects_a_divergent_journal(self, tmp_path):
        config = city_config()
        crash_after_epochs(config, 2, str(tmp_path))
        journal = tmp_path / f"city-{config.digest()[:16]}.jsonl"
        lines = journal.read_text().splitlines()
        record = json.loads(lines[1])
        record["epoch_digest"] = "0" * 64
        lines[1] = json.dumps(record, sort_keys=True)
        journal.write_text("\n".join(lines) + "\n")
        with pytest.raises(CityIntegrityError):
            run_city(config, jobs=1, cache=False, checkpoint=True,
                     journal_root=str(tmp_path), resume=True)

    def test_torn_tail_is_dropped_on_load(self, tmp_path):
        config = city_config()
        crash_after_epochs(config, 2, str(tmp_path))
        journal = CityJournal(config.digest(), root=str(tmp_path))
        committed = journal.load()
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"epoch": 2, "epoch_digest": "tr')  # torn
        assert journal.load() == committed

    def test_mismatched_config_is_not_resumed(self, tmp_path):
        config = city_config()
        crash_after_epochs(config, 2, str(tmp_path))
        journal = CityJournal(config.digest(), root=str(tmp_path))
        imposter = CityJournal(city_config(seed=8).digest(),
                               root=str(tmp_path))
        os.rename(journal.path, imposter.path)
        assert imposter.load() == []


@pytest.mark.slow
class TestCitySigkillResume:
    def test_sigkill_then_resume_matches_clean_digest(self, tmp_path):
        """kill -9 mid-epoch, then ``repro city --resume``."""
        env = dict(os.environ,
                   PYTHONPATH="src", REPRO_CACHE="0",
                   REPRO_JOURNAL_DIR=str(tmp_path / "journal"))
        cmd = [sys.executable, "-m", "repro", "city",
               "--rows", "4", "--cols", "4", "--shards", "2",
               "--epochs", "10", "--epoch-cycles", "20",
               "--warmup", "5", "--data-users", "2",
               "--gps-users", "1", "--movers", "1",
               "--hops-per-epoch", "1.0", "--seed", "7",
               "--digest-only"]
        clean = subprocess.run(cmd, env=env, capture_output=True,
                               text=True, timeout=300)
        assert clean.returncode == 0, clean.stderr
        digest = clean.stdout.strip().splitlines()[-1]
        assert len(digest) == 64

        victim = subprocess.Popen(cmd, env=env,
                                  stdout=subprocess.DEVNULL,
                                  stderr=subprocess.DEVNULL)
        journal_dir = tmp_path / "journal"
        deadline = time.time() + 120
        committed = 0
        while time.time() < deadline and victim.poll() is None:
            for journal in journal_dir.glob("city-*.jsonl"):
                committed = max(
                    committed,
                    len(journal.read_text().splitlines()) - 1)
            if committed >= 2:
                break
            time.sleep(0.05)
        assert victim.poll() is None, \
            "run finished before it could be killed; grow the config"
        assert committed >= 2, "no epoch committed before timeout"
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=60)
        assert any(journal_dir.glob("city-*.jsonl")), \
            "SIGKILL destroyed the journal"

        resumed = subprocess.run(cmd + ["--resume"], env=env,
                                 capture_output=True, text=True,
                                 timeout=300)
        assert resumed.returncode == 0, resumed.stderr
        assert resumed.stdout.strip().splitlines()[-1] == digest
        assert not any(journal_dir.glob("city-*.jsonl")), \
            "journal kept after clean resume"


# -- shard internals ---------------------------------------------------------


class TestShardSim:
    def test_handoff_state_crosses_the_barrier(self):
        """A captured departure re-materializes in the other shard with
        its queue, hop count and message counter intact."""
        config = city_config()
        shards = [ShardSim(config, 0), ShardSim(config, 1)]
        outbound = []
        for epoch in range(config.epochs):
            for shard in shards:
                shard.apply_inbound(epoch, outbound)
            outbound = []
            for shard in shards:
                report = shard.run_epoch(epoch)
                outbound.extend(report["outbound"])
            outbound = canonical_order(outbound)
            departures = [env for env in outbound
                          if env["type"] == "handoff"]
            if departures:
                break
        assert departures, "no shard boundary crossed; re-seed"
        env = departures[0]
        assert env["state"]["ein"] == env["ein"]
        assert env["hop"] >= 1
        owner = config.shard_of_cell(env["to_cell"])
        target = shards[owner]
        before = dict(target._local)
        target.apply_inbound(epoch + 1, [env])
        assert env["ein"] in target._local
        assert env["ein"] not in before
        materialized = target._local[env["ein"]]
        assert materialized.ein == env["ein"]
        assert target._hop[env["ein"]] == env["hop"]

    def test_census_is_consistent_with_reports(self, serial_result):
        config = city_config()
        census = sorted(ein for report in serial_result.reports
                        for ein in report["census"])
        assert len(census) == len(set(census)), \
            "a subscriber is hosted by two shards at once"
        # Everyone not mid-flight at the final barrier is hosted.
        assert set(census) <= set(config.all_eins())

    def test_no_radio_violations_in_the_acceptance_city(
            self, serial_result):
        assert serial_result.counters["radio_violations"] == 0


# -- observability -----------------------------------------------------------


@pytest.fixture
def fresh_registry():
    registry = MetricsRegistry(enabled=False)
    previous = set_default_registry(registry)
    yield registry
    set_default_registry(previous)


class TestCityMetrics:
    def test_city_families_are_published(self, fresh_registry):
        fresh_registry.enable()
        run_city(city_config(), jobs=1, cache=False,
                 checkpoint=False)
        families = {family.name for family
                    in fresh_registry.families()}
        assert "osu_city_handoffs_total" in families
        assert "osu_city_messages_total" in families
        assert "osu_city_backbone_bytes_total" in families
        assert "osu_city_epoch_barrier_lag_seconds" in families
        handoffs = fresh_registry.get("osu_city_handoffs_total")
        children = list(handoffs.children())
        assert sum(child.value for _, child in children) > 0
        assert all(len(labels) == 3  # (shard, cell, kind)
                   for labels, _ in children)

    def test_disabled_registry_costs_nothing(self, fresh_registry,
                                             serial_result):
        result = run_city(city_config(), jobs=1, cache=False,
                          checkpoint=False)
        assert fresh_registry.families() == []
        assert result.digest == serial_result.digest
