"""Unit tests for the experiment runner/report machinery."""

import pytest

from repro.experiments.runner import (
    ExperimentResult,
    PAPER_LOADS,
    average_summaries,
    cycles_for,
    sweep_loads,
)


class TestExperimentResult:
    def make(self):
        return ExperimentResult(
            experiment_id="T", title="Demo table",
            headers=["load", "util"],
            rows=[[0.3, 0.31], [0.9, 0.87]],
            notes="a note")

    def test_format_contains_everything(self):
        text = self.make().format()
        assert "Demo table" in text
        assert "load" in text
        assert "0.31" in text
        assert "a note" in text

    def test_series(self):
        result = self.make()
        assert result.series("load") == [0.3, 0.9]
        assert result.series("util") == [0.31, 0.87]
        with pytest.raises(ValueError):
            result.series("nope")

    def test_csv_roundtrip(self, tmp_path):
        result = self.make()
        csv_text = result.to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0] == "load,util"
        assert lines[1] == "0.3,0.31"
        path = tmp_path / "out.csv"
        result.save_csv(str(path))
        assert path.read_text() == csv_text


class TestHelpers:
    def test_average_summaries(self):
        merged = average_summaries([{"a": 1.0, "b": 2.0},
                                    {"a": 3.0, "b": 4.0}])
        assert merged == {"a": 2.0, "b": 3.0}
        assert average_summaries([]) == {}

    def test_cycles_for(self):
        quick = cycles_for(True)
        full = cycles_for(False)
        assert quick[0] < full[0]
        assert quick[1] < quick[0]

    def test_paper_loads(self):
        assert PAPER_LOADS == (0.3, 0.5, 0.8, 0.9, 1.0, 1.1)


class TestSweep:
    def test_sweep_returns_one_point_per_load(self):
        points = sweep_loads(loads=(0.3, 0.9), seeds=(1,), quick=True,
                             num_data_users=4, num_gps_users=1,
                             cycles=40, warmup_cycles=8)
        assert len(points) == 2
        assert points[0]["load"] == 0.3
        assert "utilization" in points[0]
        assert points[1]["utilization"] > points[0]["utilization"]

    def test_sweep_custom_metric(self):
        points = sweep_loads(loads=(0.5,), seeds=(1,), quick=True,
                             metric=lambda stats: float(
                                 stats.registrations_completed),
                             num_data_users=4, num_gps_users=1,
                             cycles=40, warmup_cycles=8)
        assert points[0]["metric"] == 5.0

    def test_sweep_averages_over_seeds(self):
        single = sweep_loads(loads=(0.5,), seeds=(1,), quick=True,
                             num_data_users=4, num_gps_users=1,
                             cycles=40, warmup_cycles=8)
        double = sweep_loads(loads=(0.5,), seeds=(1, 2), quick=True,
                             num_data_users=4, num_gps_users=1,
                             cycles=40, warmup_cycles=8)
        # Different seed sets generally give different averages.
        assert single[0]["utilization"] != pytest.approx(
            double[0]["utilization"], abs=1e-12) \
            or single[0] != double[0]


class TestCsvCli:
    def test_save_csv_flag(self, tmp_path, capsys):
        from repro.experiments.__main__ import main
        code = main(["table1", "--quick", "--save-csv",
                     str(tmp_path)])
        assert code == 0
        saved = tmp_path / "table1.csv"
        assert saved.exists()
        assert "parameter,paper,model" in saved.read_text()
