"""Property-based and fuzz tests of whole-protocol invariants."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro import CellConfig, run_cell_detailed
from repro.core.gps_slots import GpsSlotManager
from repro.phy import timing


class GpsSlotMachine(RuleBasedStateMachine):
    """Stateful model-based test of the R1-R3 slot rules.

    The model is a simple set of active uids; the invariants encode the
    paper's guarantees: unique slots, prefix consolidation (dynamic
    mode), format correctness, and R3 moves only to earlier slots.
    """

    def __init__(self):
        super().__init__()
        self.manager = GpsSlotManager(dynamic=True)
        self.active = {}
        self.next_uid = 0
        self.moves_seen = 0

    @rule()
    def admit(self):
        uid = self.next_uid
        self.next_uid += 1
        slot = self.manager.admit(uid)
        if len(self.active) >= 8:
            assert slot is None
        else:
            assert slot is not None
            self.active[uid] = slot

    @precondition(lambda self: self.active)
    @rule(index=st.integers(min_value=0, max_value=7))
    def leave(self, index):
        uid = sorted(self.active)[index % len(self.active)]
        moves = self.manager.leave(uid)
        del self.active[uid]
        for move in moves:
            assert move.new_slot < move.old_slot  # earlier-only (QoS)
            assert move.uid in self.active
            self.active[move.uid] = move.new_slot
        self.moves_seen += len(moves)

    @invariant()
    def slots_unique_and_prefix(self):
        slots = self.manager.occupied_slots()
        assert slots == list(range(len(self.active)))
        self.manager.check_invariants()

    @invariant()
    def format_matches_population(self):
        expected = 1 if len(self.active) > 3 else 2
        assert self.manager.format_id == expected

    @invariant()
    def model_agrees_with_manager(self):
        for uid, slot in self.active.items():
            assert self.manager.slot_of(uid) == slot


TestGpsSlotMachine = GpsSlotMachine.TestCase
TestGpsSlotMachine.settings = settings(
    max_examples=40, stateful_step_count=40,
    suppress_health_check=[HealthCheck.too_slow],
    deadline=None)


class TestWholeCellInvariants:
    """Fuzz small cells over random configurations; assert invariants
    that must hold regardless of workload or channel."""

    @given(
        data_users=st.integers(1, 8),
        gps_users=st.integers(0, 8),
        load=st.sampled_from([0.2, 0.6, 1.0, 1.3]),
        message_size=st.sampled_from(["fixed", "uniform"]),
        error=st.sampled_from(["perfect", "outage"]),
        second_cf=st.booleans(),
        dynamic=st.booleans(),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_invariants_hold(self, data_users, gps_users, load,
                             message_size, error, second_cf, dynamic,
                             seed):
        config = CellConfig(
            num_data_users=data_users, num_gps_users=gps_users,
            load_index=load, message_size=message_size,
            error_model=error, outage_loss=0.05,
            use_second_cf=second_cf,
            dynamic_slot_adjustment=dynamic,
            cycles=40, warmup_cycles=8, seed=seed)
        run = run_cell_detailed(config)
        stats = run.stats

        # 1. The half-duplex constraint is never violated.
        assert stats.radio_violations == 0

        # 2. Conservation: deliveries never exceed transmissions.
        assert stats.data_packets_delivered <= stats.data_packets_sent
        assert stats.gps_packets_delivered <= stats.gps_packets_sent
        assert stats.messages_delivered <= stats.messages_generated

        # 3. Slot accounting is consistent.
        assert stats.reverse_data_slots_used \
            <= stats.reverse_data_slots_assigned
        assert stats.reverse_data_slots_assigned \
            <= stats.reverse_data_slots_total

        # 4. GPS QoS: on any channel, transmitted reports respect the
        #    deadline (misses only possible via CF loss on lossy links).
        if error == "perfect":
            assert stats.gps_deadline_misses == 0

        # 5. Without the second CF set, the last slot is never used.
        if not second_cf:
            assert stats.data_packets_in_last_slot == 0

        # 6. The GPS manager's structural invariants hold at the end.
        run.base_station.gps_mgr.check_invariants()

        # 7. Registration never over-assigns uids.
        uids = [u.uid for u in run.data_users + run.gps_units
                if u.uid is not None]
        assert len(uids) == len(set(uids))

    @given(seed=st.integers(0, 1_000))
    @settings(max_examples=10, deadline=None)
    def test_determinism(self, seed):
        config = CellConfig(num_data_users=4, num_gps_users=2,
                            load_index=0.7, cycles=30, warmup_cycles=6,
                            seed=seed)
        first = run_cell_detailed(config).stats.summary()
        second = run_cell_detailed(config).stats.summary()
        assert first == second


class TestConservation:
    def test_message_ledger_balances(self):
        """generated = delivered + dropped + still-queued/in-flight."""
        config = CellConfig(num_data_users=6, num_gps_users=2,
                            load_index=1.0, cycles=100,
                            warmup_cycles=20, seed=31,
                            buffer_packets=40)
        run = run_cell_detailed(config)
        stats = run.stats
        # Count messages still somewhere in the system at the end.
        pending_message_ids = set()
        for subscriber in run.data_users:
            for packet in list(subscriber.queue) \
                    + list(subscriber.inflight.values()):
                pending_message_ids.add(packet.message_id)
        # Every generated message is accounted for (delivered, dropped,
        # or still pending).  Partially-delivered messages may be both
        # pending and counted: allow slack of the pending set size.
        accounted = stats.messages_delivered + stats.messages_dropped
        assert accounted <= stats.messages_generated
        assert stats.messages_generated - accounted \
            <= len(pending_message_ids) + 2

    def test_bytes_never_created_from_nothing(self):
        config = CellConfig(num_data_users=6, num_gps_users=2,
                            load_index=0.8, cycles=100,
                            warmup_cycles=20, seed=32)
        stats = run_cell_detailed(config).stats
        assert stats.payload_bytes_delivered <= stats.bytes_offered
        assert sum(stats.per_user_bytes.values()) \
            == stats.payload_bytes_delivered
