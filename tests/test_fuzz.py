"""The fuzz engine: generation, oracles, shrinking, campaigns, corpus.

The acceptance demo at the bottom re-discovers a real, previously-fixed
bug: flipping ``uid_allocation`` back to ``lowest_free`` re-opens the
uid-reuse window (a lease-evicted zombie and the recycled uid's new
holder both deliver the same forward packets), and the campaign must
find it, shrink it, and bucket it with no case-specific help.
"""

import json
import subprocess
import sys

import pytest

from repro.engine.policy import PointFailure
from repro.engine.telemetry import EngineStats, publish_to_registry
from repro.fuzz import corpus
from repro.fuzz.campaign import run_campaign
from repro.fuzz.case import CASE_SCHEMA, FuzzCase
from repro.fuzz.generator import CampaignGenerator, settle_cycles
from repro.fuzz.oracles import (
    Violation,
    bucket_of,
    normalize_fingerprint,
)
from repro.fuzz.runner import run_fuzz_case
from repro.fuzz.shrink import first_failure, shrink_case
from repro.lint.checker import scope_for_path

DEMO_OVERRIDES = {"uid_allocation": "lowest_free"}
DEMO_BUCKET = "conservation:flow:forward-packets"


class TestGenerator:
    def test_case_is_pure_function_of_seed_and_index(self):
        gen = CampaignGenerator(42)
        # Draw out of order, redundantly, and from a fresh generator:
        # identical cases every time.
        a = gen.case(3)
        gen.case(7)
        b = gen.case(3)
        c = CampaignGenerator(42).case(3)
        assert a == b == c

    def test_different_seeds_and_indices_differ(self):
        gen = CampaignGenerator(42)
        assert gen.case(0) != gen.case(1)
        assert gen.case(0) != CampaignGenerator(43).case(0)

    def test_cases_are_legal_configs(self):
        gen = CampaignGenerator(9)
        for case in gen.cases(12):
            config = case.cell_config()  # raises if out of bounds
            assert config.check_invariants
            assert config.num_gps_users <= 8
            assert config.warmup_cycles < config.cycles

    def test_overrides_apply_and_sizing_follows(self):
        gen = CampaignGenerator(9, overrides={
            "liveness_lease_cycles": 12, "num_gps_users": 2})
        for case in gen.cases(6):
            config = dict(case.config_items)
            assert config["liveness_lease_cycles"] == 12
            assert config["num_gps_users"] == 2
            # Sizing saw the forced lease: room for the settle tail.
            assert case.cycles >= settle_cycles(config)

    def test_json_round_trip(self):
        case = CampaignGenerator(5).case(2)
        blob = json.dumps(case.to_json(), sort_keys=True)
        again = FuzzCase.from_json(json.loads(blob))
        assert again == case

    def test_from_json_rejects_wrong_schema(self):
        data = CampaignGenerator(5).case(0).to_json()
        data["schema"] = "something/else@9"
        with pytest.raises(ValueError):
            FuzzCase.from_json(data)

    def test_unknown_config_field_rejected(self):
        with pytest.raises(ValueError):
            FuzzCase(campaign_seed=1, index=0, mode="cell",
                     config_items=(("no_such_field", 3),),
                     faults_text="", ops=())


class TestOracles:
    def test_fingerprint_collapses_identities(self):
        a = normalize_fingerprint("gps uid 3 leaked slot 5")
        b = normalize_fingerprint("gps uid 61 leaked slot 0")
        assert a == b == "gps uid # leaked slot #"

    def test_bucket_is_highest_priority_earliest(self):
        violations = [
            Violation("stabilization", 50, "gps-zombie", "m"),
            Violation("invariants", 60, "registry: #", "m"),
        ]
        violations.sort(key=lambda v: v.oracle)  # any order in
        assert bucket_of(sorted(
            violations, key=lambda v: ("invariants" != v.oracle, v.cycle)
        )) == "invariants:registry: #"
        assert bucket_of([]) is None

    def test_clean_case_passes_all_oracles(self):
        verdict = run_fuzz_case(CampaignGenerator(1).case(1))
        assert verdict["ok"]
        assert verdict["bucket"] is None
        assert verdict["violations"] == []
        assert verdict["case"]["index"] == 1

    def test_differential_case_runs_both_kernels(self):
        case = CampaignGenerator(1).case(8)  # index % 8 == 0 -> diff
        assert case.differential
        verdict = run_fuzz_case(case)
        assert verdict["ok"], verdict["violations"]


class TestShrinker:
    def _synthetic(self, case):
        """Fails iff >= 4 data users AND a crash survives in the text.

        Everything else (gps users, ops, loads, extra faults) is noise
        the shrinker should strip.
        """
        config = dict(case.config_items)
        failing = (config.get("num_data_users", 0) >= 4
                   and "crash:" in case.faults_text)
        bucket = "synthetic:boom" if failing else None
        return {"ok": not failing, "bucket": bucket, "violations": []}

    def _noisy_case(self):
        return FuzzCase(
            campaign_seed=99, index=0, mode="cell",
            config_items=tuple(sorted({
                "num_data_users": 9, "num_gps_users": 5,
                "load_index": 0.9, "forward_load_index": 0.4,
                "error_model": "ge", "cycles": 90,
                "warmup_cycles": 12, "seed": 7,
            }.items())),
            faults_text=("crash:data-0@20;fade:gps-*@30+6*0.8;"
                         "cf_storm:*@40+2"),
            ops=(), differential=True)

    def test_strips_noise_keeps_failure_mode(self):
        result = shrink_case(self._noisy_case(), "synthetic:boom",
                             evaluate=self._synthetic, max_evals=200)
        config = dict(result.case.config_items)
        assert self._synthetic(result.case)["bucket"] == "synthetic:boom"
        assert config["num_data_users"] == 4   # minimal, not below
        assert config["num_gps_users"] == 0
        assert "crash:" in result.case.faults_text
        assert "fade:" not in result.case.faults_text
        assert "cf_storm:" not in result.case.faults_text
        assert not result.case.differential
        assert result.accepted > 0
        assert "shrunk from case" in result.case.note

    def test_deterministic(self):
        one = shrink_case(self._noisy_case(), "synthetic:boom",
                          evaluate=self._synthetic, max_evals=200)
        two = shrink_case(self._noisy_case(), "synthetic:boom",
                          evaluate=self._synthetic, max_evals=200)
        assert one.case == two.case
        assert one.evals == two.evals

    def test_respects_eval_budget(self):
        calls = []

        def counting(case):
            calls.append(case)
            return self._synthetic(case)

        shrink_case(self._noisy_case(), "synthetic:boom",
                    evaluate=counting, max_evals=10)
        assert len(calls) <= 10

    def test_crashing_evaluator_keeps_parent(self):
        def fragile(case):
            if dict(case.config_items)["num_gps_users"] < 5:
                raise RuntimeError("evaluator crashed")
            return {"ok": False, "bucket": "synthetic:boom"}

        result = shrink_case(self._noisy_case(), "synthetic:boom",
                             evaluate=fragile, max_evals=40)
        assert dict(result.case.config_items)["num_gps_users"] == 5

    def test_first_failure_maps_buckets(self):
        verdicts = [
            None,
            {"ok": True, "bucket": None},
            {"ok": False, "bucket": "a:x", "case": 1},
            {"ok": False, "bucket": "a:x", "case": 2},
            {"ok": False, "bucket": "b:y", "case": 3},
        ]
        mapped = first_failure(verdicts)
        assert mapped["a:x"]["case"] == 1
        assert mapped["b:y"]["case"] == 3


class TestCampaign:
    def test_bit_reproducible_across_job_counts(self):
        one = run_campaign(11, budget=4, jobs=1, shrink=False)
        two = run_campaign(11, budget=4, jobs=2, shrink=False)
        assert one.digest == two.digest
        assert one.ok == two.ok == 4
        assert one.buckets == two.buckets == {}

    def test_report_json_shape(self):
        report = run_campaign(11, budget=2, jobs=1, shrink=False)
        blob = report.to_json()
        assert blob["schema"] == "repro/fuzz-report@1"
        assert blob["budget"] == 2
        assert blob["failed"] == 0
        assert len(blob["digest"]) == 16


class TestKnownBugDemo:
    """The acceptance scenario: revert the uid-allocation fix, and the
    campaign rediscovers the uid-reuse bug on its own."""

    @pytest.fixture(scope="class")
    def report(self):
        return run_campaign(1, budget=6, jobs=1,
                            overrides=dict(DEMO_OVERRIDES),
                            shrink=True, shrink_evals=40)

    def test_bug_found_and_bucketed(self, report):
        assert DEMO_BUCKET in report.buckets
        info = report.buckets[DEMO_BUCKET]
        assert info["count"] >= 1
        assert "exceeds" in info["example"]["message"]

    def test_reproducer_was_shrunk_and_reproduces(self, report):
        info = report.buckets[DEMO_BUCKET]
        reproducer = FuzzCase.from_json(info["reproducer"])
        assert info["shrink"]["accepted"] > 0
        config = dict(reproducer.config_items)
        assert config["uid_allocation"] == "lowest_free"
        verdict = run_fuzz_case(reproducer)
        assert verdict["bucket"] == DEMO_BUCKET

    def test_same_campaign_without_override_is_clean(self):
        report = run_campaign(1, budget=6, jobs=1, shrink=False)
        assert report.buckets == {}


class TestCorpus:
    def test_checked_in_corpus_replays(self):
        """Tier-1 wiring: every checked-in entry must meet its
        expectation (pass entries clean, fail entries reproducing)."""
        reports = corpus.replay_corpus(corpus.DEFAULT_CORPUS_DIR)
        assert reports, "corpus is empty -- entries were not checked in"
        bad = [r for r in reports if not r["ok"]]
        assert not bad, bad

    def test_corpus_has_the_demo_reproducer(self):
        entries = dict(corpus.iter_entries(corpus.DEFAULT_CORPUS_DIR))
        fails = [e for e in entries.values()
                 if e["expect"] == corpus.EXPECT_FAIL]
        assert any(e["bucket"] == DEMO_BUCKET for e in fails)

    def test_entry_round_trip(self, tmp_path):
        case = CampaignGenerator(3).case(1)
        entry = corpus.make_entry(case, corpus.EXPECT_PASS,
                                  notes="round trip")
        path = corpus.write_entry(str(tmp_path), entry)
        again = corpus.load_entry(path)
        assert FuzzCase.from_json(again["case"]) == case
        assert again["expect"] == corpus.EXPECT_PASS

    def test_fail_entry_requires_bucket(self):
        case = CampaignGenerator(3).case(1)
        with pytest.raises(ValueError):
            corpus.make_entry(case, corpus.EXPECT_FAIL)

    def test_bucket_id_is_stable_and_safe(self):
        bid = corpus.bucket_id("conservation:flow:forward-packets")
        assert bid == corpus.bucket_id(
            "conservation:flow:forward-packets")
        assert bid.startswith("conservation-")
        assert "/" not in bid and ":" not in bid


class TestCliSurface:
    def test_replay_corpus_entry_exits_zero(self):
        entries = sorted(
            path for path, _ in
            corpus.iter_entries(corpus.DEFAULT_CORPUS_DIR))
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "fuzz", "replay",
             entries[0]],
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stderr

    def test_campaign_json_output(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "fuzz",
             "--campaign-seed", "11", "--budget", "2", "--jobs", "1",
             "--no-shrink", "--json"],
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stderr
        blob = json.loads(proc.stdout)
        assert blob["ok"] == 2

    def test_unknown_action_rejected(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "fuzz", "frobnicate"],
            capture_output=True, text=True)
        assert proc.returncode == 2


class TestEngineTelemetrySatellite:
    def test_salvage_and_quarantine_reach_registry(self):
        from repro.obs.registry import MetricsRegistry
        import repro.obs.registry as obs_registry

        registry = MetricsRegistry()
        registry.enable()
        saved = obs_registry.default_registry
        obs_registry.default_registry = lambda: registry
        try:
            def failure(index, kind):
                return PointFailure(index=index, label={}, kind=kind,
                                    error="E", message="m",
                                    attempts=1, elapsed_s=0.1)
            stats = EngineStats(
                spec="t", points=3, executed=3, quarantined=2,
                failures=[failure(0, "timeout"),
                          failure(1, "exception"),
                          failure(2, "timeout")])
            publish_to_registry(stats)
        finally:
            obs_registry.default_registry = saved
        rows = {(row["name"], row["labels"].get("kind")): row["value"]
                for row in registry.rows()}
        assert rows[("engine_point_failures_total", "timeout")] == 2.0
        assert rows[("engine_point_failures_total", "exception")] == 1.0
        assert rows[("engine_recoveries_total", "quarantined")] == 2.0


class TestMaclintScopingSatellite:
    def test_fuzz_generator_is_det_and_hot_scoped(self):
        scope = scope_for_path("src/repro/fuzz/generator.py")
        assert scope.det and scope.hot

    def test_fuzz_reporting_layers_are_det_not_hot(self):
        for module in ("campaign", "corpus", "cli"):
            scope = scope_for_path(f"src/repro/fuzz/{module}.py")
            assert scope.det, module
            assert not scope.hot, module

    def test_det_rule_fires_inside_fuzz(self):
        from repro.lint.checker import check_source
        report = check_source(
            "import random\nrng = random.Random(1)\n",
            "src/repro/fuzz/generator.py")
        assert any(f.rule.startswith("DET") for f in report.findings)
