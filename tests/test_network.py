"""Tests for the multi-cell network layer: backbone, routing, handoff."""

import pytest

from repro.core.config import CellConfig
from repro.network import (
    Backbone,
    BackboneLink,
    MultiCellConfig,
    build_network,
    run_network,
)
from repro.phy import timing
from repro.sim import Simulator


class TestBackboneLink:
    def test_latency_and_serialization(self):
        sim = Simulator()
        link = BackboneLink(sim, latency=0.010,
                            bandwidth_bytes_per_s=1000.0)
        arrivals = []
        link.send("a", 100, lambda item: arrivals.append((item, sim.now)))
        sim.run()
        # 100 bytes at 1000 B/s = 0.1 s serialization + 0.01 s latency.
        assert arrivals == [("a", pytest.approx(0.11))]

    def test_fifo_queueing(self):
        sim = Simulator()
        link = BackboneLink(sim, latency=0.0,
                            bandwidth_bytes_per_s=1000.0)
        arrivals = []
        link.send("a", 100, lambda item: arrivals.append((item, sim.now)))
        link.send("b", 100, lambda item: arrivals.append((item, sim.now)))
        sim.run()
        assert arrivals[0] == ("a", pytest.approx(0.1))
        assert arrivals[1] == ("b", pytest.approx(0.2))
        assert link.items_carried == 2
        assert link.bytes_carried == 200
        assert link.total_queueing_delay == pytest.approx(0.1)

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            BackboneLink(sim, latency=-1, bandwidth_bytes_per_s=1)
        with pytest.raises(ValueError):
            BackboneLink(sim, latency=0, bandwidth_bytes_per_s=0)


class TestBackbone:
    def test_links_created_on_demand(self):
        sim = Simulator()
        backbone = Backbone(sim)
        first = backbone.link(0, 1)
        assert backbone.link(0, 1) is first
        assert backbone.link(1, 0) is not first  # directed

    def test_no_self_links(self):
        backbone = Backbone(Simulator())
        with pytest.raises(ValueError):
            backbone.link(2, 2)

    def test_send_and_totals(self):
        sim = Simulator()
        backbone = Backbone(sim, latency=0.001,
                            bandwidth_bytes_per_s=10000)
        got = []
        backbone.send(0, 1, "x", 50, got.append)
        sim.run()
        assert got == ["x"]
        assert backbone.total_items == 1
        assert backbone.total_bytes == 50


def network_config(**overrides):
    cell = CellConfig(num_data_users=5, num_gps_users=1, load_index=0.0,
                      cycles=100, warmup_cycles=15, seed=3)
    defaults = dict(num_cells=2, cell=cell, load_index=0.4,
                    inter_cell_fraction=0.6, seed=3)
    defaults.update(overrides)
    return MultiCellConfig(**defaults)


class TestMultiCellRouting:
    def test_messages_cross_the_backbone(self):
        run = run_network(network_config(num_cells=3))
        stats = run.stats
        assert stats.messages_forwarded > 10
        assert stats.end_to_end_delay.count > 20
        assert run.network.backbone.total_items \
            == stats.messages_forwarded

    def test_intra_cell_messages_stay_local(self):
        run = run_network(network_config(inter_cell_fraction=0.0))
        assert run.stats.messages_forwarded == 0
        assert run.network.backbone.total_items == 0
        # The uplink still carries traffic (terminating at the BS).
        assert run.stats.messages_routed > 10

    def test_every_cell_operates_cleanly(self):
        run = run_network(network_config(num_cells=3))
        for cell in run.network.cells:
            assert cell.stats.radio_violations == 0
            assert cell.stats.registrations_completed \
                == cell.config.num_data_users + cell.config.num_gps_users

    def test_end_to_end_delay_exceeds_single_hop(self):
        """An inter-cell message pays uplink + backbone + downlink."""
        run = run_network(network_config())
        # Uplink alone takes ~3 cycles at this load; end-to-end adds the
        # downlink scheduling, so the mean must exceed one cycle time.
        assert run.stats.end_to_end_delay.mean > timing.CYCLE_LENGTH

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MultiCellConfig(num_cells=0)
        with pytest.raises(ValueError):
            network_config(inter_cell_fraction=1.5)
        with pytest.raises(ValueError):
            MultiCellConfig(cell=CellConfig(load_index=0.5))


class TestHandoff:
    def test_subscriber_moves_and_reregisters(self):
        net = build_network(network_config())
        mover = net.cells[0].data_users[0]
        net.handoff(mover.ein, 1, at_time=40 * timing.CYCLE_LENGTH)
        net.run()
        assert net.stats.handoffs_completed == 1
        assert net.directory[mover.ein][0] == 1
        assert mover.state == "active"
        assert mover.uid is not None
        # The new cell approved one extra registration.
        assert net.cells[1].stats.registrations_completed \
            == net.cells[1].config.num_data_users \
            + net.cells[1].config.num_gps_users + 1

    def test_round_trip_handoff(self):
        net = build_network(network_config())
        mover = net.cells[0].data_users[1]
        net.handoff(mover.ein, 1, at_time=30 * timing.CYCLE_LENGTH)
        net.handoff(mover.ein, 0, at_time=70 * timing.CYCLE_LENGTH)
        net.run()
        assert net.stats.handoffs_completed == 2
        assert net.directory[mover.ein][0] == 0
        assert mover.state == "active"

    def test_no_radio_violations_across_handoff(self):
        net = build_network(network_config())
        mover = net.cells[0].data_users[0]
        net.handoff(mover.ein, 1, at_time=40 * timing.CYCLE_LENGTH)
        net.run()
        assert len(mover.radio.violations) == 0

    def test_messages_buffered_during_handoff_are_delivered(self):
        """Traffic addressed to a subscriber that is mid-handoff waits at
        the destination base station and flushes on registration."""
        net = build_network(network_config(inter_cell_fraction=0.0))
        mover = net.cells[0].data_users[0]
        move_at = 40 * timing.CYCLE_LENGTH
        net.handoff(mover.ein, 1, at_time=move_at)

        # Inject a message addressed to the mover right after it leaves,
        # while it has not yet registered in cell 1.
        from repro.traffic.messages import Message

        def inject():
            message = Message(message_id=999999, size_bytes=100,
                              created_at=net.sim.now,
                              destination_ein=mover.ein)
            net._route(source_cell=1, message=message)

        net.sim.call_at(move_at + 0.5, inject)
        received = []
        previous_hook = mover.on_message_received

        def on_received(packet):
            if packet.message_id == 999999:
                received.append(net.sim.now)
            if previous_hook:
                previous_hook(packet)

        mover.on_message_received = on_received
        net.run()
        assert net.stats.messages_buffered_for_registration >= 1
        assert received, "buffered message never reached the mover"

    def test_buffered_messages_flush_exactly_once_on_registration(self):
        """The paging path end to end: messages for a mid-handoff
        destination land in ``_waiting``, are counted, and the
        registration handler flushes each exactly once -- never again on
        later re-registrations."""
        net = build_network(network_config(load_index=0.0,
                                           inter_cell_fraction=0.0))
        mover = net.cells[0].data_users[0]
        move_at = 40 * timing.CYCLE_LENGTH
        net.handoff(mover.ein, 1, at_time=move_at)

        from repro.traffic.messages import Message

        def inject():
            # Two distinct messages while the mover is unregistered:
            # both must wait in _waiting, then flush together.
            for message_id in (777001, 777002):
                net._route(source_cell=1, message=Message(
                    message_id=message_id, size_bytes=120,
                    created_at=net.sim.now,
                    destination_ein=mover.ein))
            assert len(net._waiting[mover.ein]) == 2

        net.sim.call_at(move_at + 0.5, inject)
        deliveries = []
        previous_hook = mover.on_message_received

        def on_received(packet):
            if packet.message_id in (777001, 777002):
                deliveries.append((packet.message_id, net.sim.now))
            if previous_hook:
                previous_hook(packet)

        mover.on_message_received = on_received
        # A second handoff after the flush: re-registering in cell 0
        # must not replay the already-delivered messages.
        net.handoff(mover.ein, 0, at_time=70 * timing.CYCLE_LENGTH)
        net.run()
        assert net.stats.messages_buffered_for_registration == 2
        received_ids = sorted(message_id
                              for message_id, _time in deliveries)
        assert received_ids == [777001, 777002], deliveries
        assert all(at > move_at for _mid, at in deliveries)
        assert net._waiting == {}

    def test_uplink_queue_travels_with_subscriber(self):
        net = build_network(network_config(load_index=0.3,
                                           inter_cell_fraction=0.0))
        mover = net.cells[0].data_users[0]

        # Fill the mover's queue right before the handoff...
        from repro.traffic.messages import Message
        move_at = 40 * timing.CYCLE_LENGTH

        def fill():
            mover.submit_message(Message(message_id=888888,
                                         size_bytes=200,
                                         created_at=net.sim.now))

        net.sim.call_at(move_at - 0.1, fill)
        net.handoff(mover.ein, 1, at_time=move_at)
        net.run()
        # ...and the packets drain through the *new* cell.
        assert mover.state == "active"
        assert not mover.queue
        # Anything still in flight belongs to the very last cycle (its
        # ACK cycle lies beyond the end of the run).
        last_cycle = net.cells[1].base_station.cycle
        assert all(cycle >= last_cycle - 1
                   for cycle, _slot in mover.inflight)

    def test_handoff_validation(self):
        net = build_network(network_config())
        with pytest.raises(ValueError):
            net.handoff(0xDEAD, 1)
        with pytest.raises(ValueError):
            net.handoff(net.cells[0].data_users[0].ein, 7)


class TestGpsHandoff:
    def test_gps_unit_moves_between_cells(self):
        """A bus crossing a cell boundary: its GPS unit signs off, re-
        registers in the new cell, gets a GPS slot there (R2), and the
        old cell consolidates (R3/format switch)."""
        net = build_network(network_config())
        unit = net.cells[0].gps_units[0]
        move_at = 40 * timing.CYCLE_LENGTH

        def move():
            if unit.uid is None:
                return
            net.cells[0].base_station.sign_off(unit.uid)
            from repro.core.cell import _make_error_model
            from repro.phy.channel import Link
            stream = net.streams["gps-handoff"]
            target = net.cells[1]
            unit.relocate(
                target.base_station.forward,
                target.base_station.reverse,
                forward_link=Link(_make_error_model(net.config.cell,
                                                    stream), stream),
                reverse_link=Link(_make_error_model(net.config.cell,
                                                    stream), stream))

        net.sim.call_at(move_at, move)
        net.run()
        assert unit.state == "active"
        new_bs = net.cells[1].base_station
        old_bs = net.cells[0].base_station
        assert new_bs.gps_mgr.slot_of(unit.uid) is not None
        assert old_bs.gps_mgr.active_count \
            == net.config.cell.num_gps_users - 1
        old_bs.gps_mgr.check_invariants()
        new_bs.gps_mgr.check_invariants()
        # The unit keeps reporting in its new cell with zero deadline
        # misses (the QoS clock restarts at activation).
        assert len(unit.radio.violations) == 0
