"""Bench X1: the surveyed baseline MAC protocols (extension)."""

from benchmarks.conftest import run_and_report
from repro.experiments import baselines


def test_surveyed_baselines(benchmark):
    result = run_and_report(benchmark, baselines.run, seeds=(1,))
    by_key = {(row[0], row[1]): row for row in result.rows}
    heavy = 0.25
    # The survey's qualitative ordering at heavy load:
    rama = by_key[(heavy, "rama")][2]
    dtdma = by_key[(heavy, "dtdma")][2]
    prma = by_key[(heavy, "prma")][2]
    aloha = by_key[(heavy, "aloha")][2]
    assert rama >= dtdma  # deterministic auctions never waste minislots
    assert rama > prma  # reservation beats pure contention under load
    assert prma > aloha  # even PRMA beats pure slotted ALOHA
    assert aloha < 0.42  # ALOHA capped near 1/e
