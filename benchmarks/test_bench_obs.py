"""Overhead guard for the observability subsystem.

The contract ``docs/OBSERVABILITY.md`` documents: a timeline-recorded
run (the ``--metrics`` path) stays within ~5% of an uninstrumented
run, and the disabled-registry publish path is free (structurally a
no-op).  ``--profile`` is exempt from the budget by design -- wrapping
every ``sim.step`` in a ``perf_counter`` pair is pay-to-measure -- but
its ratio is measured and bounded too so a pathological regression
still trips.  The 5% figure is the *budget* recorded in
``BENCH_obs.json``; the hard assertions below are deliberately looser
(:data:`HARD_BOUND`) so single-core CI jitter does not produce false
alarms -- the measured ratios land in the JSON either way, so drift is
visible in review even when they stay under the bound.

Timings interleave the plain and instrumented variants round by round
and keep the best of each, which cancels most machine noise.  Run with
``PYTHONPATH=src python -m pytest benchmarks/test_bench_obs.py -s``;
the run rewrites ``BENCH_obs.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
import time

from repro.core.cell import build_cell, finalize_run, run_cell
from repro.core.config import CellConfig
from repro.obs.profiler import Profiler, instrument_cell
from repro.obs.registry import NULL_CHILD, MetricsRegistry
from repro.obs.timeline import TimelineRecorder

#: The documented overhead target (fraction of the plain wall-clock).
BUDGET = 0.05

#: The assert bound for the --metrics path: loose enough for CI noise,
#: tight enough that a real regression (a per-event hook on a hot
#: path) still trips.
HARD_BOUND = 1.15

#: The --profile path times every event-loop step by design; bound it
#: against pathological regressions only.
PROFILE_BOUND = 1.50

ROUNDS = 5

BENCH_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                          "BENCH_obs.json")

CELL = dict(num_data_users=9, num_gps_users=4, load_index=0.8,
            cycles=120, warmup_cycles=20, seed=1)


def _interleaved_best(variants, rounds=ROUNDS):
    """Best-of-N wall-clock per variant, interleaving the rounds."""
    best = {name: float("inf") for name in variants}
    for _ in range(rounds):
        for name, fn in variants.items():
            started = time.perf_counter()
            fn()
            best[name] = min(best[name],
                             time.perf_counter() - started)
    return best


def _plain():
    run_cell(CellConfig(**CELL))


def _instrumented(enabled_registry: bool, profiled: bool = False):
    config = CellConfig(**CELL)
    run = build_cell(config)
    registry = MetricsRegistry(enabled=enabled_registry)
    TimelineRecorder(run, registry=registry)
    if profiled:
        instrument_cell(run, Profiler())
    run.sim.run(until=config.duration)
    finalize_run(run)


def test_instrumented_run_overhead_within_bound():
    best = _interleaved_best({
        "plain": _plain,
        "timeline": lambda: _instrumented(False),
        "timeline_registry": lambda: _instrumented(True),
        "profiled": lambda: _instrumented(True, profiled=True),
    })
    ratio = best["timeline"] / best["plain"]
    ratio_registry = best["timeline_registry"] / best["plain"]
    ratio_profiled = best["profiled"] / best["plain"]

    # Disabled-registry publish path: structurally free.
    registry = MetricsRegistry(enabled=False)
    counter = registry.counter("guard_total", "", ("k",))
    assert counter.labels(k="x") is NULL_CHILD
    publishes = 100_000
    started = time.perf_counter()
    for _ in range(publishes):
        counter.labels(k="x").inc()
    disabled_s = time.perf_counter() - started
    assert disabled_s < 1.0  # ~no-op per call even on slow CI

    record = {
        "benchmark": "timeline recorder (+ registry, + profiler "
                     "hooks) vs plain run_cell",
        "date": time.strftime("%Y-%m-%d"),
        "cell": CELL,
        "rounds": ROUNDS,
        "budget": BUDGET,
        "hard_bound": HARD_BOUND,
        "profile_bound": PROFILE_BOUND,
        "plain_s": round(best["plain"], 4),
        "timeline_s": round(best["timeline"], 4),
        "timeline_registry_s":
            round(best["timeline_registry"], 4),
        "profiled_s": round(best["profiled"], 4),
        "overhead_ratio": round(ratio, 4),
        "overhead_ratio_registry": round(ratio_registry, 4),
        "overhead_ratio_profiled": round(ratio_profiled, 4),
        "disabled_publish_ns":
            round(disabled_s / publishes * 1e9, 1),
        "notes": "Interleaved best-of-N; 'overhead_ratio' is the "
                 "--metrics-to-file path (recorder, registry "
                 "disabled), '_registry' adds live gauge/histogram "
                 "publishing, '_profiled' adds the --profile hooks "
                 "(which time every event-loop step by design and "
                 "are exempt from the 5% budget). The 5% budget is "
                 "the documented target for the timeline path; the "
                 "hard asserts are looser to absorb CI noise, and "
                 "the measured ratios are recorded here so drift "
                 "shows up in review.",
    }
    with open(BENCH_PATH, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=1)
        handle.write("\n")
    print()
    print(json.dumps(record, indent=1))

    assert ratio < HARD_BOUND, (
        f"timeline-recorded run {ratio:.2f}x plain exceeds "
        f"{HARD_BOUND}x (budget {1 + BUDGET:.2f}x)")
    assert ratio_registry < HARD_BOUND + 0.05
    assert ratio_profiled < PROFILE_BOUND


def test_instrumentation_is_observationally_transparent():
    """Same seeds, same protocol outcome, hooks or no hooks."""
    config = CellConfig(**CELL)
    plain = run_cell(config).summary()
    run = build_cell(config)
    TimelineRecorder(run, registry=MetricsRegistry(enabled=True))
    instrument_cell(run, Profiler())
    run.sim.run(until=config.duration)
    finalize_run(run)
    assert run.stats.summary() == plain
