"""Benches F8a/F8b: utilization and delay vs load (Fig. 8)."""

from benchmarks.conftest import run_and_report
from repro.experiments import fig8_delay, fig8_utilization


def test_fig8a_utilization(benchmark):
    result = run_and_report(benchmark, fig8_utilization.run,
                            seeds=(1,))
    loads = result.series("load")
    utilization = result.series("utilization")
    # Shape: tracks the load at rho <= 0.8 ...
    for load, value in zip(loads, utilization):
        if load <= 0.8:
            assert abs(value - load) < 0.1
    # ... saturates below the 8/9 structural ceiling beyond.
    assert max(utilization) <= 8 / 9 + 0.03
    assert utilization[-1] > 0.8


def test_fig8b_delay(benchmark):
    result = run_and_report(benchmark, fig8_delay.run, seeds=(1,))
    delays = result.series("delay_cycles")
    loads = result.series("load")
    # Shape: a few cycles at light load, blow-up at/after the knee.
    light = delays[loads.index(0.3)]
    heavy = delays[loads.index(1.1)]
    assert light < 8
    assert heavy > 3 * light
