"""Bench X2: ablations of OSU-MAC's design choices (extension)."""

from benchmarks.conftest import run_and_report
from repro.experiments import ablation


def test_design_ablations(benchmark):
    result = run_and_report(benchmark, ablation.run, seeds=(1,))
    rows = {row[0]: row for row in result.rows}
    # Two CF sets beat one at saturation (the last slot is recovered).
    assert rows["two CF sets (rho=1.1)"][1] \
        > rows["single CF set (rho=1.1)"][1]
    # Dynamic adjustment beats static format 1 with one GPS user.
    assert rows["dynamic adjustment (1 GPS, rho=1.1)"][1] \
        > rows["static format 1 (1 GPS, rho=1.1)"][1] * 1.05
