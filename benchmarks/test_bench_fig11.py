"""Bench F11: Jain fairness index vs load (Fig. 11)."""

from benchmarks.conftest import run_and_report
from repro.experiments import fig11_fairness


def test_fig11_fairness(benchmark):
    result = run_and_report(benchmark, fig11_fairness.run, seeds=(1,))
    loads = result.series("load")
    fairness = result.series("fairness")
    # Round-robin keeps the index near 1 wherever the scheduler (not
    # arrival sampling noise) is in charge, i.e. at and past saturation.
    assert fairness[loads.index(1.0)] > 0.97
    assert fairness[loads.index(1.1)] > 0.97
    assert all(value > 0.80 for value in fairness)
