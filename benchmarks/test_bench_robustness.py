"""Bench R2: parameter robustness across the paper's sweep ranges."""

from benchmarks.conftest import run_and_report
from repro.experiments import robustness


def test_parameter_robustness(benchmark):
    result = run_and_report(benchmark, robustness.run, seeds=(1,))
    for row in result.rows:
        (_data_users, _gps_users, _size, utilization, _delay,
         fairness, gps_misses, violations) = row
        # Section 5's robustness claim: the qualitative conclusions hold
        # at every parameter combination the paper sweeps.
        assert abs(utilization - 0.7) < 0.12
        # Finite-run Poisson sampling bounds fairness from below here;
        # the full-size run (3 seeds, 400 cycles) sits above 0.9.
        assert fairness > 0.80
        assert gps_misses == 0
        assert violations == 0
