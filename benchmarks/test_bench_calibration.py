"""Bench C1: symbol-level error models -> outage-rate calibration."""

from benchmarks.conftest import run_and_report
from repro.experiments import calibration


def test_error_model_calibration(benchmark):
    result = run_and_report(benchmark, calibration.run)
    rows = {row[0]: row[1] for row in result.rows}
    # The RS(64,48) cliff: light iid noise is essentially lossless,
    # 10% symbol errors (expected 6.4 per codeword, tail past t=8) lose
    # a substantial fraction.
    assert rows["iid SER=0.5%"] < 0.01
    assert rows["iid SER=10%"] > 0.1
    assert rows["iid SER=2%"] <= rows["iid SER=5%"] <= rows["iid SER=10%"]
