"""Micro-benchmarks of the substrates (kernel, codec, full cell).

Not paper artifacts -- these document the cost of the building blocks so
regressions in the hot paths (event loop, RS decode, full-cell cycle
rate) are visible in CI.
"""

import random

from repro.core.cell import run_cell
from repro.core.config import CellConfig
from repro.phy.rs import RS_64_48
from repro.sim import Simulator


def test_event_loop_throughput(benchmark):
    def spin():
        sim = Simulator()

        def ticker():
            for _ in range(2000):
                yield sim.timeout(1.0)

        sim.process(ticker())
        sim.run()
        return sim.now

    result = benchmark(spin)
    assert result == 2000.0


def test_rs_encode(benchmark):
    message = bytes(range(48))
    codeword = benchmark(lambda: RS_64_48.encode(message))
    assert len(codeword) == 64


def test_rs_decode_with_errors(benchmark):
    rng = random.Random(1)
    message = bytes(range(48))
    codeword = bytearray(RS_64_48.encode(message))
    for position in rng.sample(range(64), 8):
        codeword[position] ^= rng.randrange(1, 256)
    received = bytes(codeword)
    decoded = benchmark(lambda: RS_64_48.decode(received))
    assert decoded == message


def test_full_cell_cycle_rate(benchmark):
    config = CellConfig(num_data_users=9, num_gps_users=4,
                        load_index=0.8, cycles=60, warmup_cycles=10,
                        seed=1)
    stats = benchmark.pedantic(lambda: run_cell(config),
                               rounds=3, iterations=1)
    assert stats.data_packets_delivered > 0
