"""Bench F9: control overhead vs load (Fig. 9)."""

from benchmarks.conftest import run_and_report
from repro.experiments import fig9_overhead


def test_fig9_control_overhead(benchmark):
    result = run_and_report(benchmark, fig9_overhead.run, seeds=(1,))
    loads = result.series("load")
    overhead = result.series("control_overhead")
    # The paper's counter-intuitive finding: overhead *decreases* with
    # load (piggybacking displaces explicit reservation packets).
    light = overhead[loads.index(0.3)]
    heavy = overhead[loads.index(1.1)]
    assert heavy < 0.5 * light
    assert all(value >= 0 for value in overhead)
