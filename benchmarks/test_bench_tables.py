"""Benches T1/T2: regenerate the paper's parameter tables."""

from benchmarks.conftest import run_and_report
from repro.experiments import tables


def test_table1(benchmark):
    result = run_and_report(benchmark, tables.run_table1)
    assert result.extra["mismatches"] == []


def test_table2(benchmark):
    result = run_and_report(benchmark, tables.run_table2)
    assert result.extra["mismatches"] == []
