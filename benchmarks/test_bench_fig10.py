"""Bench F10: contention collisions and reservation latency (Fig. 10)."""

from benchmarks.conftest import run_and_report
from repro.experiments import fig10_collision


def test_fig10_collision_and_latency(benchmark):
    result = run_and_report(benchmark, fig10_collision.run,
                            seeds=(1, 2))
    loads = result.series("load")
    collisions = result.series("p_collision")
    latency = result.series("reservation_latency_cycles")
    # Shape: the contention-heavy mid-load regime dominates; at heavy
    # load piggybacking leaves little contention, so both metrics fall
    # from their mid-load peak.
    mid = max(collisions[loads.index(0.5)], collisions[loads.index(0.8)])
    heavy = collisions[loads.index(1.1)]
    assert heavy <= mid + 0.1
    assert all(value >= 1.0 or value == 0.0 for value in latency)
    assert latency[loads.index(1.1)] <= max(latency) + 1e-9
