"""Benches F12a/F12b: second control-field set and dynamic adjustment."""

from benchmarks.conftest import run_and_report
from repro.experiments import fig12_gains


def test_fig12a_second_cf_gain(benchmark):
    result = run_and_report(benchmark, fig12_gains.run_second_cf,
                            seeds=(1,))
    gains = result.series("last_slot_share")
    # Paper: between 5% and 14% of the bandwidth rides the last slot.
    assert all(0.03 < value < 0.16 for value in gains)
    # Gain grows with load (the last slot only fills under demand).
    assert gains[-1] > gains[0]


def test_fig12b_dynamic_adjustment(benchmark):
    result = run_and_report(benchmark, fig12_gains.run_dynamic_adjustment,
                            seeds=(1,), loads=(0.3, 0.8, 1.1))
    loads = result.series("load")
    saturated = loads.index(1.1)
    gps1_dynamic = result.series("gps1_dynamic")[saturated]
    gps1_static = result.series("gps1_static")[saturated]
    gps4_dynamic = result.series("gps4_dynamic")[saturated]
    gps4_static = result.series("gps4_static")[saturated]
    # With 1 GPS user, dynamic adjustment recovers the 9th data slot:
    # ~1/8 = 12.5% more slots served at saturation (paper: up to ~15%).
    assert gps1_dynamic > gps1_static * 1.05
    # With 4 GPS users both run format 1: no difference.
    assert abs(gps4_dynamic - gps4_static) < 0.4
