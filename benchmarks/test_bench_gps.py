"""Bench Q1: GPS access-delay QoS, steady state and under churn."""

from benchmarks.conftest import run_and_report
from repro.experiments import gps_qos


def test_gps_access_delay(benchmark):
    result = run_and_report(benchmark, gps_qos.run, seeds=(1,))
    for row in result.rows:
        scenario, sent, misses, max_delay, reassignments = row
        assert sent > 100
        assert misses == 0  # the paper's hard 4 s guarantee
        assert max_delay < 4.0
        if scenario.startswith("churn"):
            assert reassignments > 0  # R3 consolidation actually fired
