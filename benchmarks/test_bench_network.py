"""Bench N1: multi-cell network with inter-cell traffic and handoffs.

Not a paper artifact (the paper evaluates one cell); this benchmarks the
wide-area layer the paper's system model describes -- backbone
forwarding, end-to-end delivery, handoff -- at a fixed scenario so its
cost and behaviour are tracked.
"""

from repro.core.config import CellConfig
from repro.network import MultiCellConfig, build_network
from repro.phy import timing


def test_three_cell_network_with_handoffs(benchmark):
    def scenario():
        config = MultiCellConfig(
            num_cells=3,
            cell=CellConfig(num_data_users=5, num_gps_users=2,
                            load_index=0.0, cycles=100,
                            warmup_cycles=15, seed=4),
            load_index=0.4, inter_cell_fraction=0.6, seed=4)
        network = build_network(config)
        roamer = network.cells[0].data_users[0]
        network.handoff(roamer.ein, 1,
                        at_time=40 * timing.CYCLE_LENGTH)
        network.handoff(roamer.ein, 2,
                        at_time=70 * timing.CYCLE_LENGTH)
        stats = network.run()
        return network, stats

    network, stats = benchmark.pedantic(scenario, rounds=1, iterations=1)
    print()
    print(f"messages routed    : {stats.messages_routed}")
    print(f"over the backbone  : {stats.messages_forwarded}")
    print(f"end-to-end delay   : {stats.end_to_end_delay.mean:.1f} s "
          f"mean ({stats.end_to_end_delay.count} delivered)")
    print(f"handoffs completed : {stats.handoffs_completed}")
    assert stats.handoffs_completed == 2
    assert stats.messages_forwarded > 20
    assert stats.end_to_end_delay.count > 30
    for cell in network.cells:
        assert cell.stats.radio_violations == 0
        assert cell.stats.gps_deadline_misses == 0
