"""Shared benchmark helpers.

Each benchmark runs one experiment harness end-to-end (quick-sized, one
seed), reports its wall-clock via pytest-benchmark, prints the
regenerated table, and asserts the qualitative *shape* the paper reports
(who wins, monotonicity, where the knee falls) -- absolute numbers are
simulator-dependent and are recorded in EXPERIMENTS.md instead.
"""

from __future__ import annotations


def run_and_report(benchmark, runner, **kwargs):
    """Benchmark one experiment runner and print its table."""
    kwargs.setdefault("quick", True)
    result = benchmark.pedantic(lambda: runner(**kwargs),
                                rounds=1, iterations=1)
    print()
    print(result.format())
    return result
