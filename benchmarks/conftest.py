"""Shared benchmark helpers.

Each benchmark runs one experiment harness end-to-end (quick-sized, one
seed), reports its wall-clock via pytest-benchmark, prints the
regenerated table, and asserts the qualitative *shape* the paper reports
(who wins, monotonicity, where the knee falls) -- absolute numbers are
simulator-dependent and are recorded in EXPERIMENTS.md instead.

Benchmarks bypass the engine's on-disk result cache (``cache=False``):
a cache hit would measure a JSON read instead of the simulation the
benchmark exists to time.
"""

from __future__ import annotations


def run_and_report(benchmark, runner, **kwargs):
    """Benchmark one experiment runner and print its table."""
    kwargs.setdefault("quick", True)
    kwargs.setdefault("cache", False)
    result = benchmark.pedantic(lambda: runner(**kwargs),
                                rounds=1, iterations=1)
    print()
    print(result.format())
    return result
