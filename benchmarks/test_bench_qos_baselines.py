"""Bench X3: RQMA retransmission sessions and FAMA overhead scaling."""

from benchmarks.conftest import run_and_report
from repro.experiments import qos_baselines


def test_rqma_retransmission_sessions(benchmark):
    result = run_and_report(benchmark, qos_baselines.run_rqma,
                            seeds=(1,))
    by_key = {(row[0], row[1]): row[2] for row in result.rows}
    # Clean channel: both variants meet essentially every deadline.
    assert by_key[(0.0, "with rtx session")] < 0.02
    # Lossy channel: the retransmission session halves misses (at least).
    for error_rate in (0.10, 0.20):
        with_rtx = by_key[(error_rate, "with rtx session")]
        without = by_key[(error_rate, "no rtx session")]
        assert with_rtx < 0.5 * without


def test_fama_overhead_amortization(benchmark):
    result = run_and_report(benchmark, qos_baselines.run_fama,
                            seeds=(1,))
    fama = {row[0]: row[2] for row in result.rows
            if row[1] == "fama"}
    aloha = next(row[2] for row in result.rows
                 if row[1] == "slotted aloha")
    # Longer packets amortize the RTS/CTS overhead.
    assert fama[50] > fama[10] > fama[2]
    # With long packets FAMA crushes ALOHA's 1/e ceiling.
    assert fama[50] > 0.7
    assert aloha < 0.42


def test_mcns_piggyback_mirrors_fig9(benchmark):
    result = run_and_report(benchmark, qos_baselines.run_mcns,
                            seeds=(1,))
    fractions = result.series("piggyback_fraction")
    # Piggyback share grows with load -- the DOCSIS analogue of OSU-MAC's
    # Fig. 9 (implicit reservations displace contention under load).
    assert fractions[-1] > 2 * max(fractions[0], 0.05)
    assert fractions == sorted(fractions) or fractions[-1] > fractions[0]
