"""CI perf guard: the calendar kernel must not regress vs the legacy heap.

Raw points/s is host-dependent (CI runners differ by 2-3x in single-core
throughput), so this guard measures a *ratio* on the same host in the
same process: the quick fig8 sweep is timed under the calendar kernel
and under the preserved legacy heap kernel, rounds interleaved so load
spikes hit both kernels alike.  The calendar kernel must finish within
``PERF_GUARD_TOLERANCE`` (default 1.25) of the legacy time -- i.e. a
scheduler change that makes the new kernel >25% slower than the kernel
it replaced fails CI, while host speed differences cancel out.

Usage::

    PYTHONPATH=src python benchmarks/perf_guard.py
    PERF_GUARD_ROUNDS=5 PERF_GUARD_TOLERANCE=1.1 \
        PYTHONPATH=src python benchmarks/perf_guard.py

Exit status: 0 when the ratio is within tolerance, 1 otherwise.
"""

from __future__ import annotations

import os
import sys
import time

from repro.engine import RunSpec, execute
from repro.experiments.kernel_diff import legacy_variant
from repro.experiments.runner import sweep_spec


def _time_spec(spec: RunSpec) -> float:
    started = time.perf_counter()
    execute(spec, jobs=1, cache=False)
    return time.perf_counter() - started


def main() -> int:
    rounds = int(os.environ.get("PERF_GUARD_ROUNDS", "3"))
    tolerance = float(os.environ.get("PERF_GUARD_TOLERANCE", "1.25"))
    base = sweep_spec(quick=True)
    calendar_spec = RunSpec(name=f"{base.name}-calendar",
                            points=base.points, reducer=None)
    legacy_spec = legacy_variant(base)

    # Warm both code paths (imports, first-call caches) off the clock.
    _time_spec(calendar_spec)
    _time_spec(legacy_spec)

    calendar_best = min(_time_spec(calendar_spec) for _ in range(rounds))
    legacy_best = min(_time_spec(legacy_spec) for _ in range(rounds))
    ratio = calendar_best / legacy_best
    points = len(base.points)
    print(f"perf-guard: {points} points x {rounds} rounds (min): "
          f"calendar {calendar_best:.3f}s "
          f"({points / calendar_best:.1f} points/s), "
          f"legacy {legacy_best:.3f}s "
          f"({points / legacy_best:.1f} points/s), "
          f"ratio {ratio:.2f} (tolerance {tolerance:.2f})")
    if ratio > tolerance:
        print(f"perf-guard: FAIL -- calendar kernel is {ratio:.2f}x the "
              f"legacy time (allowed {tolerance:.2f}x); the scheduler "
              f"hot path has regressed", file=sys.stderr)
        return 1
    print("perf-guard: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
