"""Bench R1: registration latency vs the Section 2.1 design goals."""

from benchmarks.conftest import run_and_report
from repro.experiments import registration


def test_registration_latency_cdf(benchmark):
    result = run_and_report(benchmark, registration.run, seeds=(1, 2))
    # Design goals hold in the sparse (Poisson) arrival regime.
    for row in result.rows:
        label, _registered, _mean, cdf2, cdf10 = row
        if label.startswith("poisson (0.05"):
            assert cdf2 >= 0.8
            assert cdf10 >= 0.95
        # Every scenario eventually registers everyone.
        assert row[1] == 22  # 14 data + 8 GPS subscribers
